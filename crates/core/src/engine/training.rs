//! The training layer (§4.2): sample selection, ground truth, plan
//! timing, and forest fitting.
//!
//! [`GraphContext::train_session`] runs exactly once per query —
//! regardless of executor or worker count — and produces a
//! [`TrainedSession`]: compiled plans, Models α and β, the step-budget
//! tables, and the shuffled candidate split. The session is shared
//! read-only by every executor worker of the query.
//!
//! **Refit policy under graph evolution.** Sessions are never cached
//! across queries, so an evolving deployment gets model refits for
//! free: every job trains against the snapshot it pinned at pickup,
//! and the first job after
//! [`PsiService::apply_update`](super::service::PsiService::apply_update)
//! simply trains on the new epoch's graph. Only *predictions* persist
//! across queries, and those live in epoch-keyed caches that the
//! update path retires.

use std::time::{Duration, Instant};

use psi_graph::{NodeId, PivotedQuery};
use psi_ml::forest::RandomForest;
use psi_ml::{Classifier, Dataset};
use psi_obs::{timed, Counter, Phase, Recorder};
use psi_signature::SignatureStore;
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::evaluator::{CompiledPlan, QueryContext, Verdict};
use crate::fault::{eval_isolated, IsolatedOutcome, NodeMatcher};
use crate::limits::EvalLimits;
use crate::plan::{heuristic_plan, sample_plans};
use crate::report::FailureReport;
use crate::smart::RunParams;
use crate::Strategy;

use super::context::GraphContext;
use super::ladder::{stage_limits, stage_limits_node};

/// Everything [`TrainedSession`]-building can conclude.
pub(crate) enum TrainOutcome {
    /// Too few candidates for ML to pay off; run the plain sweep.
    TooFew,
    /// A *global* deadline or cancel flag fired during training;
    /// `steps` were spent and `failures` accumulated before stopping.
    Interrupted { steps: u64, failures: FailureReport },
    /// Models are fitted and ready.
    Trained(Box<TrainedSession>),
}

/// Per-query state produced by the training phase (§4.2), shared
/// read-only by every executor worker: compiled plans, both models,
/// the step-budget tables and the candidate split.
pub(crate) struct TrainedSession {
    pub(crate) ctx: QueryContext,
    pub(crate) plans: Vec<CompiledPlan>,
    pub(crate) heuristic: CompiledPlan,
    pub(crate) strategies: [Strategy; 2],
    alpha: RandomForest,
    beta: Option<RandomForest>,
    /// Version of the online-adapted forests currently substituted for
    /// the per-query fit (0 = serving the per-query models). Keys the
    /// prediction cache so a refit invalidates superseded entries.
    adapted_version: u64,
    sum_steps: Vec<Vec<u64>>,
    cnt_steps: Vec<Vec<u64>>,
    global_avg: u64,
    /// Valid nodes discovered among the training sample.
    pub(crate) train_valid: Vec<NodeId>,
    /// Steps spent during training.
    pub(crate) train_steps: u64,
    pub(crate) n_train: usize,
    /// The candidates left for the main loop (shuffled order).
    pub(crate) rest: Vec<NodeId>,
    pub(crate) total_candidates: usize,
    pub(crate) training_and_prediction: Duration,
    /// Faults survived while training (failed training nodes are not
    /// in `train_valid`, `rest`, or `n_train`).
    pub(crate) failures: FailureReport,
}

impl TrainedSession {
    /// `MaxTime(u) = 2 × AvgT(method, plan)` (§4.3), with a floor so a
    /// zero-cost training average cannot starve stage 1.
    pub(crate) fn max_time(&self, method_idx: usize, plan_idx: usize) -> u64 {
        let c = self.cnt_steps[method_idx][plan_idx];
        match (2 * self.sum_steps[method_idx][plan_idx]).checked_div(c) {
            None => 2 * self.global_avg,
            Some(avg) => avg.max(32),
        }
    }

    /// Swap in the online-adapted α/β forests
    /// ([`AdaptedModels`](super::adapt::AdaptedModels)) in place of
    /// this session's per-query models. `dim` is the deployment's
    /// current feature width (`label_count + 1`); a mismatch — e.g.
    /// models fitted before a label-growing update — leaves the
    /// session frozen on its own models and returns `false`. β is
    /// replaced only when the session trained one (its predictions
    /// are clamped to the session's plan count either way), so a
    /// β-disabled config stays β-disabled.
    pub(crate) fn apply_adapted(&mut self, m: &super::adapt::AdaptedModels, dim: usize) -> bool {
        if m.dim != dim {
            return false;
        }
        self.alpha = m.alpha.clone();
        if self.beta.is_some() {
            if let Some(b) = &m.beta {
                self.beta = Some(b.clone());
            }
        }
        self.adapted_version = m.version;
        true
    }

    /// Version of the adapted forests this session serves (0 = its own
    /// per-query fit).
    pub(crate) fn adapted_version(&self) -> u64 {
        self.adapted_version
    }

    /// Predict (method index, plan index) for a feature row — the
    /// signature row with the stage-1 prefilter score appended, the
    /// same layout the models were fitted on. Each forest call is one
    /// recorded ML inference.
    pub(crate) fn predict(&self, row: &[f32], rec: &dyn Recorder) -> (usize, usize) {
        let m = 1 - self.alpha.predict_recorded(row, rec).min(1); // class 1 (valid) → optimistic (0)
        let p = self
            .beta
            .as_ref()
            .map_or(0, |b| b.predict_recorded(row, rec).min(self.plans.len() - 1));
        (m, p)
    }
}

impl GraphContext {
    /// Training phase (§4.2): sample training nodes, obtain ground
    /// truth and plan timings, fit Models α and β. Runs exactly once
    /// per query; the result is shared read-only across executor
    /// workers. Wrapped in a [`Phase::Train`] span.
    pub(crate) fn train_session(
        &self,
        query: &PivotedQuery,
        candidates: Vec<NodeId>,
        limits: &EvalLimits,
        params: &RunParams,
        rec: &dyn Recorder,
    ) -> TrainOutcome {
        timed(rec, Phase::Train, || {
            self.train_session_inner(query, candidates, limits, params, rec)
        })
    }

    fn train_session_inner(
        &self,
        query: &PivotedQuery,
        candidates: Vec<NodeId>,
        limits: &EvalLimits,
        params: &RunParams,
        rec: &dyn Recorder,
    ) -> TrainOutcome {
        if candidates.len() < self.config.min_candidates_for_ml {
            return TrainOutcome::TooFew;
        }
        let ctx = QueryContext::new(query.clone(), self.config.depth);
        let mut matcher = self.matcher(params);
        let m: &mut dyn NodeMatcher = &mut matcher;
        let isolate = params.panic_isolation;
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let t_setup = Instant::now();

        // ---- Plans -------------------------------------------------
        let plan_orders = sample_plans(&self.g, query, self.config.plan_sample.max(1), rng.gen());
        let plans: Vec<CompiledPlan> = plan_orders.iter().map(|p| ctx.compile(p)).collect();
        let heuristic = ctx.compile(&heuristic_plan(&self.g, query));

        // ---- Training sample ---------------------------------------
        let n_train = ((candidates.len() as f64 * self.config.train_fraction).ceil() as usize)
            .clamp(1, self.config.max_train_nodes.min(candidates.len()));
        let total_candidates = candidates.len();
        let mut shuffled = candidates;
        for i in (1..shuffled.len()).rev() {
            let j = rng.gen_range(0..=i);
            shuffled.swap(i, j);
        }
        let rest = shuffled.split_off(n_train);
        let train_nodes = shuffled;

        // ---- Ground truth + plan timing on the training nodes ------
        let mut valid = Vec::new();
        let mut steps = 0u64;
        let mut failures = FailureReport::default();
        let strategies = [
            Strategy::Optimistic { super_cap: Some(self.config.super_cap) },
            Strategy::Pessimistic,
        ];
        // avg_steps[method][plan] from training runs.
        let mut sum_steps = vec![vec![0u64; plans.len()]; 2];
        let mut cnt_steps = vec![vec![0u64; plans.len()]; 2];
        let mut alpha_rows: Vec<(NodeId, usize)> = Vec::with_capacity(n_train);
        let mut beta_rows: Vec<(NodeId, usize)> = Vec::with_capacity(n_train);
        'train: for &u in &train_nodes {
            // True type via the pessimistic method (§4.2.1: "more
            // stable and performs better on average"), isolated and
            // retried so one broken training node cannot fail the
            // query.
            let mut truth: Option<(Verdict, u64)> = None;
            let mut attempts = 0u32;
            let mut last_reason = String::new();
            while truth.is_none() && attempts <= params.retry.max_attempts {
                attempts += 1;
                let node_deadline = params.node_timeout.map(|t| Instant::now() + t);
                let lim = stage_limits_node(0, limits, node_deadline);
                match eval_isolated(m, &ctx, &heuristic, u, Strategy::Pessimistic, &lim, isolate) {
                    IsolatedOutcome::Finished(v, s) => {
                        steps += s;
                        if v != Verdict::Interrupted {
                            truth = Some((v, s));
                        } else if limits.expired() {
                            // Only the global deadline/cancel — not a
                            // node fault — aborts training.
                            return TrainOutcome::Interrupted { steps, failures };
                        } else {
                            // Per-node timeout or a matcher claiming a
                            // budget it never had.
                            failures.escalations += 1;
                            last_reason = "node timeout during training".into();
                        }
                    }
                    IsolatedOutcome::Panicked(reason) => {
                        failures.panics_recovered += 1;
                        last_reason = reason;
                    }
                }
            }
            let Some((truth_verdict, s_truth)) = truth else {
                failures.record(u, last_reason, attempts);
                continue 'train;
            };
            let is_valid = truth_verdict == Verdict::Valid;
            if is_valid {
                valid.push(u);
            }
            alpha_rows.push((u, is_valid as usize));
            let method_idx = !is_valid as usize; // 0 = optimistic (valid), 1 = pessimistic
            // Best plan under escalating limits (§4.2.2). Bounded:
            // past MAX_PLAN_ESCALATIONS doublings (or when every plan
            // panics, which no budget can fix) the node falls back to
            // the heuristic order instead of looping.
            const MAX_PLAN_ESCALATIONS: u32 = 20;
            let strategy = strategies[method_idx];
            let mut limit = self.config.initial_plan_limit;
            let mut first_round = true;
            let mut rounds = 0u32;
            let best_plan = loop {
                let mut best: Option<(u64, usize)> = None;
                let mut any_interrupted = false;
                for (pi, plan) in plans.iter().enumerate() {
                    // The ground-truth run above already timed the
                    // pessimistic method on the heuristic plan
                    // (plans[0] starts as the heuristic order); reuse
                    // it instead of re-evaluating.
                    let outcome = if first_round && pi == 0 && method_idx == 1 {
                        Some((truth_verdict, s_truth)) // reuse, costs nothing extra
                    } else {
                        let lim = stage_limits(limit, limits);
                        match eval_isolated(m, &ctx, plan, u, strategy, &lim, isolate) {
                            IsolatedOutcome::Finished(v, s) => {
                                steps += s;
                                Some((v, s))
                            }
                            IsolatedOutcome::Panicked(_) => {
                                failures.panics_recovered += 1;
                                None
                            }
                        }
                    };
                    match outcome {
                        Some((v, s)) if v != Verdict::Interrupted => {
                            sum_steps[method_idx][pi] += s;
                            cnt_steps[method_idx][pi] += 1;
                            if best.is_none_or(|(bs, _)| s < bs) {
                                best = Some((s, pi));
                            }
                        }
                        Some(_) => any_interrupted = true,
                        None => {}
                    }
                }
                rounds += 1;
                match best {
                    Some((_, pi)) => break pi,
                    None => {
                        if limits.expired() {
                            // The interruptions were the global limits,
                            // not the escalating step cap: doubling the
                            // cap would loop forever.
                            return TrainOutcome::Interrupted { steps, failures };
                        }
                        if !any_interrupted || rounds > MAX_PLAN_ESCALATIONS {
                            break 0;
                        }
                        failures.escalations += 1;
                        limit = limit.saturating_mul(2);
                        first_round = false;
                    }
                }
            };
            beta_rows.push((u, best_plan));
        }

        if alpha_rows.is_empty() {
            // Every training node failed: no model can be fitted. The
            // plain exact sweep (which is itself fault-isolated) covers
            // all candidates instead.
            return TrainOutcome::TooFew;
        }

        // ---- Fit the models -----------------------------------------
        // Feature vector = the signature row plus the stage-1
        // satisfiability score against the pivot's query signature —
        // the same score the batched prefilter sweep hands the
        // predictor at evaluation time (bitwise-equal per the batch
        // parity tests), so training and inference share one feature
        // map.
        let dim = self.sigs.label_count() + 1;
        let pivot_row = ctx.signatures().row(query.pivot());
        // One reusable row buffer: a no-op view for dense storage, the
        // dequantization target for compact storage.
        let mut row_buf = Vec::new();
        let mut feat = Vec::with_capacity(dim);
        let mut alpha_ds = Dataset::with_capacity(dim, alpha_rows.len());
        for &(u, label) in &alpha_rows {
            feat.clear();
            feat.extend_from_slice(self.sigs.row_view(u, &mut row_buf));
            feat.push(self.sigs.row_score(u, pivot_row));
            alpha_ds.push(&feat, label);
        }
        let mut alpha = RandomForest::new(self.config.forest);
        alpha.fit(&alpha_ds, rng.gen());

        let beta = if self.config.enable_beta && plans.len() > 1 {
            let mut beta_ds = Dataset::with_capacity(dim, beta_rows.len());
            for &(u, label) in &beta_rows {
                feat.clear();
                feat.extend_from_slice(self.sigs.row_view(u, &mut row_buf));
                feat.push(self.sigs.row_score(u, pivot_row));
                beta_ds.push(&feat, label);
            }
            let mut f = RandomForest::new(self.config.forest);
            f.fit(&beta_ds, rng.gen());
            Some(f)
        } else {
            None
        };

        let global_avg = {
            let total: u64 = sum_steps.iter().flatten().sum();
            let cnt: u64 = cnt_steps.iter().flatten().sum();
            match total.checked_div(cnt) {
                None => self.config.initial_plan_limit,
                Some(avg) => avg.max(16),
            }
        };
        rec.add(Counter::TrainedNodes, (n_train - failures.len()) as u64);
        rec.add(Counter::Steps, steps);
        TrainOutcome::Trained(Box::new(TrainedSession {
            ctx,
            plans,
            heuristic,
            strategies,
            alpha,
            beta,
            adapted_version: 0,
            sum_steps,
            cnt_steps,
            global_avg,
            train_valid: valid,
            train_steps: steps,
            // Failed training nodes are accounted in `failures`, not
            // as trained (keeps `trained + stages + failed + unresolved
            // == candidates` exact).
            n_train: n_train - failures.len(),
            rest,
            total_candidates,
            training_and_prediction: t_setup.elapsed(),
            failures,
        }))
    }
}

#[cfg(test)]
mod tests {
    use psi_obs::Counter;

    use crate::smart::{RunSpec, SmartPsi};
    use crate::{PsiResult, SmartPsiConfig};

    fn counter(r: &PsiResult, c: Counter) -> u64 {
        r.profile.as_ref().expect("run always attaches a profile").counter(c)
    }

    #[test]
    fn ml_path_matches_oracle_on_generated_graph() {
        let g = psi_datasets::generators::erdos_renyi(400, 1600, 4, 3);
        let cfg = SmartPsiConfig {
            min_candidates_for_ml: 10, // force the ML path
            ..SmartPsiConfig::default()
        };
        let smart = SmartPsi::new(g.clone(), cfg);
        for size in 3..=5usize {
            let Some(q) = psi_datasets::rwr::extract_query_seeded(&g, size, size as u64 * 13) else {
                continue;
            };
            let oracle = psi_match::psi_by_enumeration(
                &psi_match::Engine::TurboIso,
                &g,
                &q,
                &psi_match::SearchBudget::unlimited(),
            );
            let r = smart.run(&q, &RunSpec::new());
            assert_eq!(r.valid, oracle.valid, "size {size}");
            assert!(counter(&r, Counter::TrainedNodes) > 0, "ML path must engage");
            assert_eq!(r.unresolved, 0, "SmartPSI always resolves");
        }
    }
}
