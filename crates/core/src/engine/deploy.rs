//! One front door for every deployment shape.
//!
//! Historically each serving topology had its own constructor scattered
//! across the stack: `SmartPsi::serve` (single service),
//! `SmartPsi::serve_sharded{,_spec}` (scatter-gather),
//! `EvolvingContext::serve` and `PsiService::new_evolving`
//! (updatable deployments) — all deleted since. Picking a signature
//! store on top of that would have doubled the matrix.
//! [`DeploymentSpec`] collapses the whole product space into one
//! builder:
//!
//! ```text
//!   {workers} × {static | sharded} × {frozen | evolving} × {dense | compact}
//! ```
//!
//! resolved by a single call, [`SmartPsi::deploy`]:
//!
//! ```
//! use psi_core::{DeploymentSpec, RunSpec, SmartPsi, SmartPsiConfig};
//!
//! let g = psi_datasets::generators::erdos_renyi(300, 1200, 3, 7);
//! let q = psi_datasets::rwr::extract_query_seeded(&g, 4, 1).unwrap();
//! let smart = SmartPsi::new(g, SmartPsiConfig::default());
//!
//! // A 2-worker single service on the compact store:
//! let spec = DeploymentSpec::new()
//!     .workers(2)
//!     .sig_store(psi_signature::SigStoreKind::Compact);
//! let mut dep = smart.deploy(&spec);
//! let r = dep.submit(q, RunSpec::new()).unwrap().wait();
//! # let _ = r;
//! dep.shutdown(std::time::Duration::from_secs(1));
//! ```
//!
//! [`SmartPsi::deploy`]: crate::SmartPsi::deploy

use std::time::Duration;

use psi_graph::{GraphUpdate, PivotedQuery};
use psi_signature::SigStoreKind;

use crate::engine::adapt::AdaptiveConfig;
use crate::engine::service::{DrainReport, JobHandle, PsiService};
use crate::engine::shard::{
    ShardBalance, ShardSpec, ShardedJobHandle, ShardedService, SubmitError,
};
use crate::report::PsiResult;
use crate::smart::RunSpec;

/// Builder-style description of one serving deployment: worker count,
/// sharding, halo depth, partition balance, signature store backend,
/// and static-vs-evolving. `DeploymentSpec::default()` is a 1-worker,
/// unsharded, static deployment on the context's existing store —
/// exactly what `serve(1)` used to build.
#[derive(Debug, Clone, Default)]
pub struct DeploymentSpec {
    workers: usize,
    shards: usize,
    halo: Option<u32>,
    balance: ShardBalance,
    sig_store: Option<SigStoreKind>,
    evolving: Option<usize>,
    adaptive: Option<AdaptiveConfig>,
}

impl DeploymentSpec {
    /// A 1-worker, unsharded, static deployment on the context's
    /// existing signature store (same as `default()`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Worker threads — total for a single service, *per shard* when
    /// [`DeploymentSpec::shards`] is set (clamped to ≥ 1 at deploy).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Partition the graph into `shards` contiguous ranges served
    /// scatter-gather (`0` or `1` = unsharded single service).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Ghost-node halo depth for sharded deployments (default:
    /// [`crate::engine::shard::DEFAULT_HALO_DEPTH`]). Ignored when
    /// unsharded.
    pub fn halo(mut self, depth: u32) -> Self {
        self.halo = Some(depth);
        self
    }

    /// Partition balance policy for sharded deployments. Ignored when
    /// unsharded.
    pub fn balance(mut self, balance: ShardBalance) -> Self {
        self.balance = balance;
        self
    }

    /// Signature store backend for the deployment. Unset (the default)
    /// keeps whatever store the context was built with; setting a
    /// different backend converts once at deploy time.
    pub fn sig_store(mut self, kind: SigStoreKind) -> Self {
        self.sig_store = Some(kind);
        self
    }

    /// Make the deployment evolving: accept
    /// [`apply_update`](Deployment::apply_update) batches, reserving
    /// signature label space for `label_capacity` labels (clamped up
    /// to the graph's current label count).
    pub fn evolving(mut self, label_capacity: usize) -> Self {
        self.evolving = Some(label_capacity);
        self
    }

    /// Enable the online α/β adaptation loop: every served query
    /// feeds its `(features, method, outcome, steps)` back into a
    /// bounded reservoir, an `epsilon` fraction of queries explores
    /// the non-predicted method, and pooled models are refit every
    /// `cadence` queries (0 = refit only on drift / explicit install).
    /// Off by default — a frozen deployment stays bit-identical to
    /// pre-adaptive behavior. Tune capacity/seed via
    /// [`DeploymentSpec::adaptive_config`] with a hand-built
    /// [`AdaptiveConfig`].
    pub fn adaptive(mut self, cadence: u64, epsilon: f64) -> Self {
        self.adaptive = Some(AdaptiveConfig::new(cadence, epsilon));
        self
    }

    /// Enable adaptation with a fully specified [`AdaptiveConfig`]
    /// (reservoir capacity, ε seed) instead of the
    /// [`DeploymentSpec::adaptive`] defaults.
    pub fn adaptive_config(mut self, cfg: AdaptiveConfig) -> Self {
        self.adaptive = Some(cfg);
        self
    }

    pub(crate) fn worker_count(&self) -> usize {
        self.workers.max(1)
    }

    pub(crate) fn is_sharded(&self) -> bool {
        self.shards > 1
    }

    pub(crate) fn label_capacity(&self) -> Option<usize> {
        self.evolving
    }

    pub(crate) fn store_kind(&self) -> Option<SigStoreKind> {
        self.sig_store
    }

    pub(crate) fn adaptive_cfg(&self) -> Option<AdaptiveConfig> {
        self.adaptive
    }

    pub(crate) fn shard_spec(&self) -> ShardSpec {
        let mut spec = ShardSpec::new(self.shards)
            .workers_per_shard(self.worker_count())
            .balance(self.balance);
        if let Some(d) = self.halo {
            spec = spec.halo_depth(d);
        }
        if let Some(cfg) = self.adaptive {
            spec = spec.adaptive(cfg);
        }
        spec
    }
}

/// A live deployment resolved from a [`DeploymentSpec`]: either a
/// single [`PsiService`] or a scatter-gather [`ShardedService`],
/// fronted by one uniform submit/update/drain surface.
pub enum Deployment {
    /// An unsharded worker-pool service (static or evolving).
    Service(PsiService),
    /// A scatter-gather sharded service (static or evolving).
    Sharded(ShardedService),
}

/// An in-flight query submitted through a [`Deployment`]; resolves to
/// one [`PsiResult`] regardless of the topology behind it.
pub enum DeploymentHandle {
    /// Job on a single service.
    Single(JobHandle),
    /// Scatter-gather job across shards.
    Sharded(ShardedJobHandle),
}

impl DeploymentHandle {
    /// Block until the query finishes and return the merged result.
    pub fn wait(self) -> PsiResult {
        match self {
            DeploymentHandle::Single(h) => h.wait(),
            DeploymentHandle::Sharded(h) => h.wait(),
        }
    }
}

impl Deployment {
    /// Submit one query. On a sharded deployment this can reject
    /// queries whose pivot eccentricity exceeds the halo depth (see
    /// [`ShardedService::submit`]); a single service accepts
    /// everything.
    pub fn submit(
        &self,
        query: PivotedQuery,
        spec: RunSpec,
    ) -> Result<DeploymentHandle, SubmitError> {
        match self {
            Deployment::Service(s) => Ok(DeploymentHandle::Single(s.submit(query, spec))),
            Deployment::Sharded(s) => s.submit(query, spec).map(DeploymentHandle::Sharded),
        }
    }

    /// Apply a graph-update batch to an evolving deployment. Returns
    /// the published epoch (on a sharded deployment: the highest
    /// per-shard epoch after the batch). Use
    /// [`Deployment::as_service`] / [`Deployment::as_sharded`] when
    /// the full per-topology update report is needed.
    pub fn apply_update(&self, updates: &[GraphUpdate]) -> Result<u64, crate::UpdateError> {
        match self {
            Deployment::Service(s) => s.apply_update(updates).map(|r| r.epoch),
            Deployment::Sharded(s) => s
                .apply_update(updates)
                .map(|r| r.shard_epochs.iter().copied().max().unwrap_or(0)),
        }
    }

    /// Gracefully drain the deployment (see [`PsiService::shutdown`]
    /// and [`ShardedService::shutdown`]); idempotent.
    pub fn shutdown(&mut self, grace: Duration) -> DrainReport {
        match self {
            Deployment::Service(s) => s.shutdown(grace),
            Deployment::Sharded(s) => s.shutdown(grace),
        }
    }

    /// The single service behind this deployment, if unsharded.
    pub fn as_service(&self) -> Option<&PsiService> {
        match self {
            Deployment::Service(s) => Some(s),
            Deployment::Sharded(_) => None,
        }
    }

    /// The sharded service behind this deployment, if sharded.
    pub fn as_sharded(&self) -> Option<&ShardedService> {
        match self {
            Deployment::Service(_) => None,
            Deployment::Sharded(s) => Some(s),
        }
    }

    /// Unwrap the single service. Panics on a sharded deployment —
    /// callers using `into_service` asked for an unsharded spec.
    pub fn into_service(self) -> PsiService {
        match self {
            Deployment::Service(s) => s,
            Deployment::Sharded(_) => panic!("deployment is sharded; use into_sharded()"),
        }
    }

    /// Unwrap the sharded service. Panics on an unsharded deployment.
    pub fn into_sharded(self) -> ShardedService {
        match self {
            Deployment::Sharded(s) => s,
            Deployment::Service(_) => panic!("deployment is unsharded; use into_service()"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RunSpec, SmartPsi, SmartPsiConfig};
    use psi_signature::SigStoreKind;

    fn setup() -> (SmartPsi, PivotedQuery) {
        let g = psi_datasets::generators::erdos_renyi(400, 1800, 3, 5);
        let q = psi_datasets::rwr::extract_query_seeded(&g, 4, 2).unwrap();
        (SmartPsi::new(g, SmartPsiConfig::default()), q)
    }

    #[test]
    fn default_spec_matches_run() {
        let (smart, q) = setup();
        let want = smart.run(&q, &RunSpec::new()).valid;
        let mut dep = smart.deploy(&DeploymentSpec::new());
        assert!(dep.as_service().is_some());
        let got = dep.submit(q, RunSpec::new()).unwrap().wait().valid;
        assert_eq!(want, got);
        dep.shutdown(Duration::from_secs(2));
    }

    #[test]
    fn sharded_compact_evolving_full_product() {
        let (smart, q) = setup();
        let want = smart.run(&q, &RunSpec::new()).valid;
        let spec = DeploymentSpec::new()
            .workers(2)
            .shards(3)
            .halo(4)
            .evolving(8)
            .sig_store(SigStoreKind::Compact);
        let mut dep = smart.deploy(&spec);
        assert!(dep.as_sharded().is_some());
        let got = dep.submit(q.clone(), RunSpec::new()).unwrap().wait().valid;
        assert_eq!(want, got);
        let epoch = dep
            .apply_update(&[psi_graph::GraphUpdate::AddNode { label: 1 }])
            .unwrap();
        assert_eq!(epoch, 1);
        dep.shutdown(Duration::from_secs(2));
    }

    #[test]
    fn evolving_single_service_updates() {
        let (smart, q) = setup();
        let mut dep = smart.deploy(&DeploymentSpec::new().workers(2).evolving(6));
        let before = dep.submit(q.clone(), RunSpec::new()).unwrap().wait().valid;
        let epoch = dep
            .apply_update(&[psi_graph::GraphUpdate::AddNode { label: 0 }])
            .unwrap();
        assert_eq!(epoch, 1);
        let after = dep.submit(q, RunSpec::new()).unwrap().wait().valid;
        assert_eq!(before, after, "an isolated new node can't change the answer");
        dep.shutdown(Duration::from_secs(2));
    }

    #[test]
    #[should_panic(expected = "deployment is unsharded")]
    fn into_sharded_panics_on_service() {
        let (smart, _) = setup();
        let dep = smart.deploy(&DeploymentSpec::new());
        let _ = dep.into_sharded();
    }
}
