//! Result and timing types shared by the PSI runners.

use std::time::Duration;

use psi_graph::NodeId;
use psi_obs::QueryProfile;

/// Result of evaluating one PSI query over the whole data graph.
///
/// Equality deliberately ignores [`PsiResult::profile`] and
/// [`PsiResult::feedback`]: two results are equal when they agree on
/// the *answer* (valid set, accounting, failures), regardless of how
/// long each phase took, which run was profiled, or what training
/// telemetry it carried. The differential tests compare executors
/// this way.
#[derive(Debug, Clone)]
pub struct PsiResult {
    /// Sorted distinct valid nodes (pivot bindings).
    pub valid: Vec<NodeId>,
    /// Candidate nodes considered (after the label/degree filter).
    pub candidates: usize,
    /// Total search steps across all candidates.
    pub steps: u64,
    /// Candidates whose evaluation was cut off by a *global* deadline
    /// or cancel flag and never resolved (0 for exact runs; the
    /// SmartPSI recovery path resolves everything else, so SmartPSI
    /// reports 0 here for runs without a global limit).
    pub unresolved: usize,
    /// Faults survived during the evaluation: per-node failures the
    /// executor isolated instead of aborting, plus retry/worker-death
    /// accounting. Empty on healthy runs.
    pub failures: FailureReport,
    /// Observability profile of the run that produced this result:
    /// per-phase wall times, the metrics-registry counters, and step
    /// histograms. Always attached by
    /// [`SmartPsi::run`](crate::SmartPsi::run); `None` from the
    /// low-level single/two-thread runners unless their `_recorded`
    /// variants are used. Boxed so the common answer-only consumers
    /// pay one pointer.
    pub profile: Option<Box<QueryProfile>>,
    /// Per-node training feedback collected when the run's
    /// [`RunSpec`](crate::RunSpec) asked for it (`feedback(true)`):
    /// one [`FeedbackRow`] per predictor-adjudicated candidate that
    /// reached a verdict, sorted by node id. Empty otherwise. Like
    /// `profile`, excluded from equality — it describes how the answer
    /// was reached, not the answer. The adaptive serving layer
    /// ([`AdaptiveState`](crate::engine::adapt::AdaptiveState)) absorbs
    /// these rows to refit the α/β models online.
    pub feedback: Vec<FeedbackRow>,
}

/// One per-node training observation: what the realist's predictor saw,
/// what it (or the ε-exploration floor) chose, and what actually
/// happened. This is exactly the §4.2 training tuple, harvested from
/// production traffic instead of a per-query training sample.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackRow {
    /// The evaluated data node.
    pub node: NodeId,
    /// Model feature vector (signature row + stage-1 prefilter score).
    pub features: Vec<f32>,
    /// Method that evaluated the node: 0 = optimistic, 1 = pessimistic
    /// (Model α's label convention: class 1 = valid ⇒ optimistic).
    pub method: u8,
    /// Plan sample index the node ran with (Model β's label).
    pub plan: usize,
    /// Whether the node's method choice came from the ε-exploration
    /// floor rather than the predictor. Exploration rows keep the
    /// feedback distribution unbiased; accuracy metrics skip them.
    pub explored: bool,
    /// Final verdict: `true` ⇔ the node is valid.
    pub valid: bool,
    /// Steps the winning evaluation spent on the node.
    pub steps: u64,
}

impl PartialEq for PsiResult {
    fn eq(&self, other: &Self) -> bool {
        self.valid == other.valid
            && self.candidates == other.candidates
            && self.steps == other.steps
            && self.unresolved == other.unresolved
            && self.failures == other.failures
    }
}

impl Eq for PsiResult {}

impl PsiResult {
    /// Number of valid nodes.
    pub fn count(&self) -> usize {
        self.valid.len()
    }

    /// Whether `node` is valid.
    pub fn contains(&self, node: NodeId) -> bool {
        self.valid.binary_search(&node).is_ok()
    }

    /// An empty result over `candidates` candidates (nothing resolved).
    pub fn empty(candidates: usize, steps: u64) -> Self {
        Self {
            valid: Vec::new(),
            candidates,
            steps,
            unresolved: candidates,
            failures: FailureReport::default(),
            profile: None,
            feedback: Vec::new(),
        }
    }
}

/// One candidate node the executor could not resolve despite panic
/// isolation and the full retry/escalation ladder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeFailure {
    /// The data node whose evaluation failed.
    pub node: NodeId,
    /// Why the last attempt failed (panic payload, "node timeout", …).
    pub reason: String,
    /// Evaluation attempts spent on the node before giving up.
    pub attempts: u32,
}

/// Fault accounting for one PSI evaluation: what went wrong and what
/// the executor did about it. All healthy-path counters are zero, so
/// [`FailureReport::is_clean`] is the cheap "nothing happened" check.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailureReport {
    /// Nodes that stayed unresolved after every recovery attempt,
    /// sorted by node id after the executor's final merge.
    pub nodes: Vec<NodeFailure>,
    /// Per-node evaluation attempts that panicked but were isolated
    /// and retried (a node that eventually resolves still counts its
    /// failed attempts here).
    pub panics_recovered: u64,
    /// Per-node attempts that ended in a budget/spurious interrupt and
    /// were escalated to a bigger budget or the exact fallback.
    pub escalations: u64,
    /// Worker threads that died mid-run and were detected at join.
    pub worker_deaths: usize,
    /// Candidates re-queued from dead workers and re-evaluated.
    pub requeued: usize,
}

impl FailureReport {
    /// Record one unrecoverable node failure.
    pub fn record(&mut self, node: NodeId, reason: impl Into<String>, attempts: u32) {
        self.nodes.push(NodeFailure {
            node,
            reason: reason.into(),
            attempts,
        });
    }

    /// Number of failed nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether any node failed.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether the run saw no fault activity at all — no failed nodes,
    /// no recovered panics, no escalations, no worker deaths.
    pub fn is_clean(&self) -> bool {
        self == &FailureReport::default()
    }

    /// Merge another report into this one (parallel-executor join).
    pub fn merge(&mut self, other: &FailureReport) {
        self.nodes.extend(other.nodes.iter().cloned());
        self.panics_recovered += other.panics_recovered;
        self.escalations += other.escalations;
        self.worker_deaths += other.worker_deaths;
        self.requeued += other.requeued;
    }

    /// Canonical order for deterministic comparison across executors.
    pub fn sort(&mut self) {
        self.nodes.sort_by_key(|f| f.node);
    }
}

/// Wall-clock breakdown of a SmartPSI evaluation, used by Table 4
/// (training overhead as a fraction of total time).
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// Training-node ground-truth evaluation + model fitting +
    /// per-node prediction (the paper's "models training/prediction"
    /// overhead).
    pub training_and_prediction: Duration,
    /// PSI evaluation of the remaining candidates.
    pub evaluation: Duration,
}

impl StageTimings {
    /// Total accounted time.
    pub fn total(&self) -> Duration {
        self.training_and_prediction + self.evaluation
    }

    /// Training+prediction share of total, in [0, 1]; 0 for an empty
    /// total.
    pub fn overhead_fraction(&self) -> f64 {
        let t = self.total().as_secs_f64();
        if t == 0.0 {
            0.0
        } else {
            self.training_and_prediction.as_secs_f64() / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_queries() {
        let r = PsiResult {
            valid: vec![1, 4, 9],
            candidates: 10,
            steps: 123,
            unresolved: 0,
            failures: FailureReport::default(),
            profile: None,
            feedback: Vec::new(),
        };
        assert_eq!(r.count(), 3);
        assert!(r.contains(4));
        assert!(!r.contains(5));
        assert!(r.failures.is_clean());
        // Equality ignores the profile and the feedback telemetry.
        let mut p = r.clone();
        p.profile = Some(Box::new(QueryProfile::new()));
        p.feedback.push(FeedbackRow {
            node: 1,
            features: vec![0.0],
            method: 0,
            plan: 0,
            explored: false,
            valid: true,
            steps: 9,
        });
        assert_eq!(p, r);
    }

    #[test]
    fn failure_report_merge_and_sort() {
        let mut a = FailureReport::default();
        a.record(7, "panic", 3);
        a.panics_recovered = 2;
        let mut b = FailureReport::default();
        b.record(2, "node timeout", 1);
        b.escalations = 5;
        b.worker_deaths = 1;
        b.requeued = 4;
        a.merge(&b);
        a.sort();
        assert_eq!(a.len(), 2);
        assert_eq!(a.nodes[0].node, 2);
        assert_eq!(a.nodes[1].node, 7);
        assert_eq!(a.panics_recovered, 2);
        assert_eq!(a.escalations, 5);
        assert_eq!(a.worker_deaths, 1);
        assert_eq!(a.requeued, 4);
        assert!(!a.is_clean());
        assert!(FailureReport::default().is_clean());
    }

    #[test]
    fn overhead_fraction() {
        let t = StageTimings {
            training_and_prediction: Duration::from_millis(25),
            evaluation: Duration::from_millis(75),
        };
        assert!((t.overhead_fraction() - 0.25).abs() < 1e-9);
        assert_eq!(StageTimings::default().overhead_fraction(), 0.0);
        assert_eq!(t.total(), Duration::from_millis(100));
    }
}
