//! Result and timing types shared by the PSI runners.

use std::time::Duration;

use psi_graph::NodeId;

/// Result of evaluating one PSI query over the whole data graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PsiResult {
    /// Sorted distinct valid nodes (pivot bindings).
    pub valid: Vec<NodeId>,
    /// Candidate nodes considered (after the label/degree filter).
    pub candidates: usize,
    /// Total search steps across all candidates.
    pub steps: u64,
    /// Candidates whose evaluation was interrupted by limits and never
    /// resolved (0 for exact runs; the SmartPSI recovery path always
    /// resolves, so SmartPSI reports 0 here too).
    pub unresolved: usize,
}

impl PsiResult {
    /// Number of valid nodes.
    pub fn count(&self) -> usize {
        self.valid.len()
    }

    /// Whether `node` is valid.
    pub fn contains(&self, node: NodeId) -> bool {
        self.valid.binary_search(&node).is_ok()
    }
}

/// Wall-clock breakdown of a SmartPSI evaluation, used by Table 4
/// (training overhead as a fraction of total time).
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// Training-node ground-truth evaluation + model fitting +
    /// per-node prediction (the paper's "models training/prediction"
    /// overhead).
    pub training_and_prediction: Duration,
    /// PSI evaluation of the remaining candidates.
    pub evaluation: Duration,
}

impl StageTimings {
    /// Total accounted time.
    pub fn total(&self) -> Duration {
        self.training_and_prediction + self.evaluation
    }

    /// Training+prediction share of total, in [0, 1]; 0 for an empty
    /// total.
    pub fn overhead_fraction(&self) -> f64 {
        let t = self.total().as_secs_f64();
        if t == 0.0 {
            0.0
        } else {
            self.training_and_prediction.as_secs_f64() / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_queries() {
        let r = PsiResult {
            valid: vec![1, 4, 9],
            candidates: 10,
            steps: 123,
            unresolved: 0,
        };
        assert_eq!(r.count(), 3);
        assert!(r.contains(4));
        assert!(!r.contains(5));
    }

    #[test]
    fn overhead_fraction() {
        let t = StageTimings {
            training_and_prediction: Duration::from_millis(25),
            evaluation: Duration::from_millis(75),
        };
        assert!((t.overhead_fraction() - 0.25).abs() < 1e-9);
        assert_eq!(StageTimings::default().overhead_fraction(), 0.0);
        assert_eq!(t.total(), Duration::from_millis(100));
    }
}
