//! Work-stealing parallel executor for SmartPSI.
//!
//! The static driver ([`SmartPsi::evaluate_parallel_static`]) splits
//! the candidates into one chunk per thread up front. That has two
//! structural costs: (1) each chunk trains its own pair of models and
//! fills its own prediction cache — `T` threads do `T×` the training
//! work and learn nothing from each other — and (2) the pessimistic
//! candidates of a skewed workload cluster in a few chunks, so one
//! slow worker holds the wall clock while the rest idle.
//!
//! This module replaces both mechanisms:
//!
//! * **Train once, share read-only.** The query's [`TrainedSession`]
//!   (models, compiled plans, step budgets) is built a single time on
//!   the calling thread and borrowed by every worker.
//! * **Shared atomic-cursor queue.** Candidates sit in one slice; an
//!   `AtomicUsize` cursor hands out index ranges of `grab_size` via
//!   `fetch_add`. Small grabs mean a hard node delays at most one
//!   grab's worth of followers, not a `1/T` chunk.
//! * **Sharded concurrent prediction cache.** One
//!   [`PredictionCache`] is shared by all workers: a prediction
//!   confirmed by any worker's stage 1 serves every other worker.
//!   Shards (each a `parking_lot::Mutex<FxHashMap>`) keep lock
//!   contention off the hot path.
//! * **Deterministic merge.** Per-worker partial reports are merged
//!   by summing counters and sorting the union of `valid` sets.
//!
//! **Determinism argument.** Which worker evaluates which candidate —
//! and whether its (method, plan) came from the cache or a model —
//! affects only *cost* (steps, stage counters, cache hits), never the
//! *verdict*: every recovery pipeline ends in stage 3, an exhaustive
//! unlimited run, and both methods are exact (§4.3). Hence the sorted
//! `valid` vector and the `candidates`/`trained_nodes` counts are
//! identical for any worker count, grab size, cache mode and run —
//! property-tested in `determinism_across_worker_counts`.
//!
//! **Limit observance.** A global deadline or cancel flag
//! ([`EvalLimits`]) is (a) threaded into every per-stage limit, so
//! in-flight searches unwind within
//! [`POLL_INTERVAL`](crate::limits::POLL_INTERVAL) steps, and (b)
//! polled at every grab boundary, so no worker starts more than one
//! grab after cancellation. Candidates never grabbed, and the
//! remainder of a grab whose node came back
//! [`Verdict::Interrupted`](crate::Verdict::Interrupted), are
//! reported as `unresolved`.
//!
//! **Fault tolerance.** Every per-node evaluation inside a grab is
//! panic-isolated and retried by [`SmartPsi::eval_rest_node`]'s
//! ladder, so a broken node costs one entry in the result's
//! [`FailureReport`](crate::report::FailureReport), not the pool. A
//! worker *thread* dying entirely (a panic outside the isolated
//! region, or an injected
//! [`FaultKind::KillWorker`](crate::fault::FaultKind::KillWorker)) is
//! detected at join: each grab is committed to a shared ledger as a
//! unit, so a dead worker loses only its in-flight grab, which the
//! calling thread detects via the ledger and re-evaluates inline
//! (`requeued` in the failure report). The pool never aborts on a
//! worker death.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::Mutex;
use psi_graph::hash::{FxHashMap, FxHasher};
use psi_graph::{NodeId, PivotedQuery};
use psi_obs::{timed, Counter, Histogram, MetricsRecorder, NoopRecorder, Phase, Recorder};
use psi_signature::SignatureKey;

use crate::fault::{InjectedPanic, NodeMatcher};
use crate::limits::EvalLimits;
use crate::report::StageTimings;
use crate::single::pivot_candidates;
use crate::smart::{
    absorb_outcome, unresolved_report, RunParams, SmartPsi, SmartPsiReport, TrainOutcome,
    TrainedSession,
};

/// Tuning knobs for [`SmartPsi::evaluate_work_stealing`]. `Default`
/// defers every field to the deployment's
/// [`SmartPsiConfig`](crate::SmartPsiConfig).
#[derive(Debug, Clone, Default)]
pub struct WorkStealingOptions {
    /// Worker threads (`0` = `config.workers`, which at `0` in turn
    /// means one per available hardware thread).
    pub threads: usize,
    /// Candidates per queue grab (`0` = `config.grab_size`).
    pub grab: usize,
    /// Override `config.shared_cache` (`None` = keep it).
    pub shared_cache: Option<bool>,
    /// Global deadline / cancel flag observed by the whole pool.
    pub limits: EvalLimits,
}

/// One lock-protected slice of the prediction cache.
type CacheShard = Mutex<FxHashMap<SignatureKey, (usize, usize)>>;

/// Concurrent (method, plan) prediction cache keyed by exact
/// signature, sharded to keep workers off each other's locks. With a
/// single shard this is exactly the sequential executor's cache plus
/// one uncontended lock.
pub struct PredictionCache {
    shards: Box<[CacheShard]>,
    mask: usize,
}

impl PredictionCache {
    /// Create a cache with `shards` shards (rounded up to a power of
    /// two, minimum 1).
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        Self {
            shards: (0..n).map(|_| Mutex::new(FxHashMap::default())).collect(),
            mask: n - 1,
        }
    }

    fn shard_of(&self, key: &SignatureKey) -> usize {
        use std::hash::{Hash, Hasher};
        let mut h = FxHasher::default();
        key.hash(&mut h);
        (h.finish() as usize) & self.mask
    }

    /// Look up a cached (method index, plan index).
    pub fn get(&self, key: &SignatureKey) -> Option<(usize, usize)> {
        self.shards[self.shard_of(key)].lock().get(key).copied()
    }

    /// Publish a confirmed (method index, plan index).
    pub fn insert(&self, key: SignatureKey, value: (usize, usize)) {
        self.shards[self.shard_of(&key)].lock().insert(key, value);
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One committed grab's worth of results, merged deterministically
/// after join.
#[derive(Default)]
struct Partial {
    report: SmartPsiReport,
    alpha_correct: usize,
    grabbed: usize,
}

/// Shared commit log of the pool. Workers (a) register a grab range
/// as in-flight before evaluating it and (b) atomically commit its
/// [`Partial`] *and* retire the registration under one lock, so a
/// worker death can never lose a committed grab or double-count a
/// requeued one — whatever is still in `inflight` after all joins is
/// exactly the work dead workers dropped.
#[derive(Default)]
struct PoolLedger {
    partials: Vec<Partial>,
    inflight: Vec<(usize, usize)>,
}

/// Evaluate one grab range into a fresh [`Partial`]. The bool is true
/// when the *global* limits fired mid-grab (the caller must stop
/// grabbing); the remainder of the grab is then already accounted as
/// unresolved.
#[allow(clippy::too_many_arguments)]
fn run_grab(
    smart: &SmartPsi,
    sess: &TrainedSession,
    m: &mut dyn NodeMatcher,
    cache: Option<&PredictionCache>,
    rest: &[NodeId],
    start: usize,
    end: usize,
    limits: &EvalLimits,
    params: &RunParams,
    rec: &dyn Recorder,
) -> (Partial, bool) {
    let mut part = Partial {
        grabbed: end - start,
        ..Partial::default()
    };
    rec.add(Counter::GrabSteals, 1);
    rec.observe(Histogram::GrabLength, (end - start) as u64);
    for (i, &u) in rest[start..end].iter().enumerate() {
        let out = smart.eval_rest_node(sess, m, cache, u, limits, params, rec);
        let stop = out.is_global_stop();
        absorb_outcome(&mut part.report, &mut part.alpha_correct, u, &out);
        if stop {
            part.report.result.unresolved += end - start - i - 1;
            return (part, true);
        }
    }
    (part, false)
}

/// Run one query through the work-stealing pool. Called via
/// [`SmartPsi::run`](crate::SmartPsi::run) with
/// [`RunSpec::threads`](crate::RunSpec::threads).
///
/// Instrumentation: workers record into *private*
/// [`MetricsRecorder`] buffers (no cross-thread contention on the
/// shared registry) and drain them into the caller's recorder exactly
/// once at exit; the sums are order-independent, so profiled totals
/// are deterministic across schedules. A dead worker's undreained
/// buffer is lost — observational metrics only; the exact accounting
/// counters are rebuilt from the merged report either way.
pub(crate) fn work_stealing(
    smart: &SmartPsi,
    query: &PivotedQuery,
    options: &WorkStealingOptions,
    subset: Option<&[NodeId]>,
    params: &RunParams,
    rec: &dyn Recorder,
) -> SmartPsiReport {
    let cfg = smart.config();
    let threads = match (options.threads, cfg.workers) {
        (0, 0) => std::thread::available_parallelism().map_or(1, |n| n.get()),
        (0, w) => w,
        (t, _) => t,
    };
    let grab = if options.grab != 0 { options.grab } else { cfg.grab_size }.max(1);
    let shared = options.shared_cache.unwrap_or(cfg.shared_cache);
    let limits = &options.limits;

    let candidates = match subset {
        Some(s) => s.to_vec(),
        None => pivot_candidates(smart.graph(), query),
    };
    let total = candidates.len();
    if limits.expired() {
        return unresolved_report(total, 0);
    }
    if threads <= 1 {
        // One worker degenerates to the sequential executor (which the
        // determinism tests rely on for their 1-thread baseline).
        return smart.seq_run(query, subset, limits, params, rec);
    }

    let sess = match smart.train_session(query, candidates, limits, params, rec) {
        // Too few candidates for ML: spinning up a pool would cost
        // more than the sweep itself.
        TrainOutcome::TooFew => {
            return smart.seq_run(query, subset, limits, params, rec);
        }
        TrainOutcome::Interrupted { steps, failures } => {
            let mut r = unresolved_report(total, steps);
            r.result.failures = failures;
            return r;
        }
        TrainOutcome::Trained(sess) => sess,
    };

    let shared_cache = (cfg.enable_cache && shared).then(|| PredictionCache::new(cfg.cache_shards));
    let cursor = AtomicUsize::new(0);
    let ledger = Mutex::new(PoolLedger::default());
    let rest: &[NodeId] = &sess.rest;
    let fault = params.fault.as_ref();
    let t_eval = Instant::now();

    let worker_deaths = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let sess = &sess;
                let cursor = &cursor;
                let ledger = &ledger;
                let shared_cache = shared_cache.as_ref();
                scope.spawn(move |_| {
                    let mut matcher = smart.matcher(params);
                    // Private metrics buffer, drained into the shared
                    // recorder once at worker exit.
                    let local_rec = rec.enabled().then(MetricsRecorder::new);
                    let wrec: &dyn Recorder = match &local_rec {
                        Some(l) => l,
                        None => &NoopRecorder,
                    };
                    // Ablation baseline: without sharing, each worker
                    // learns only from its own grabs.
                    let local_cache = (cfg.enable_cache && shared_cache.is_none())
                        .then(|| PredictionCache::new(1));
                    let cache = shared_cache.or(local_cache.as_ref());
                    loop {
                        if limits.expired() {
                            break;
                        }
                        let start = cursor.fetch_add(grab, Ordering::Relaxed);
                        if start >= rest.len() {
                            break;
                        }
                        let end = (start + grab).min(rest.len());
                        ledger.lock().inflight.push((start, end));
                        // Simulated worker death: a KillWorker fault
                        // on any node of this grab kills the thread
                        // before evaluation; the grab stays in the
                        // inflight list for the parent to requeue.
                        if let Some(f) = fault {
                            for &u in &rest[start..end] {
                                if f.take_worker_kill(u) {
                                    std::panic::panic_any(InjectedPanic { node: u });
                                }
                            }
                        }
                        let (part, stopped) = run_grab(
                            smart, sess, &mut matcher, cache, rest, start, end, limits,
                            params, wrec,
                        );
                        {
                            let mut l = ledger.lock();
                            l.partials.push(part);
                            if let Some(pos) =
                                l.inflight.iter().position(|&r| r == (start, end))
                            {
                                l.inflight.swap_remove(pos);
                            }
                        }
                        if stopped {
                            break;
                        }
                    }
                    if let Some(l) = &local_rec {
                        l.drain_into(rec);
                    }
                })
            })
            .collect();
        // A worker that died (panicked outside the per-node isolation)
        // shows up as a join error; its in-flight grab is recovered
        // from the ledger below. No worker death aborts the pool.
        handles
            .into_iter()
            .map(|h| h.join())
            .filter(Result::is_err)
            .count()
    })
    .unwrap_or(threads);

    let PoolLedger {
        mut partials,
        inflight,
    } = ledger.into_inner();

    // ---- Requeue grabs dropped by dead workers ---------------------
    if !inflight.is_empty() {
        let mut matcher = smart.matcher(params);
        let cache = shared_cache.as_ref();
        for &(start, end) in &inflight {
            if limits.expired() {
                // Unrecovered ranges fall into the `rest - grabbed`
                // unresolved accounting below.
                break;
            }
            let (mut part, stopped) = run_grab(
                smart, &sess, &mut matcher, cache, rest, start, end, limits, params, rec,
            );
            part.report.result.failures.requeued += end - start;
            rec.add(Counter::Requeued, (end - start) as u64);
            partials.push(part);
            if stopped {
                break;
            }
        }
    }
    let evaluation = t_eval.elapsed();

    // ---- Deterministic merge ---------------------------------------
    timed(rec, Phase::Merge, || {
        let grabbed: usize = partials.iter().map(|p| p.grabbed).sum();
        let mut report = unresolved_report(sess.total_candidates, sess.train_steps);
        // Candidates the cursor handed out past cancellation to nobody,
        // plus dead-worker grabs the requeue pass could not finish.
        report.result.unresolved = rest.len() - grabbed;
        report.result.valid.extend_from_slice(&sess.train_valid);
        report.result.failures = sess.failures.clone();
        report.result.failures.worker_deaths = worker_deaths;
        report.trained_nodes = sess.n_train;
        let mut alpha_correct = 0usize;
        for p in &partials {
            report.result.valid.extend_from_slice(&p.report.result.valid);
            report.result.steps += p.report.result.steps;
            report.result.unresolved += p.report.result.unresolved;
            report.result.failures.merge(&p.report.result.failures);
            report.cache_hits += p.report.cache_hits;
            report.resolved_stage1 += p.report.resolved_stage1;
            report.recovered_stage2 += p.report.recovered_stage2;
            report.recovered_stage3 += p.report.recovered_stage3;
            report.predicted_valid += p.report.predicted_valid;
            alpha_correct += p.alpha_correct;
        }
        report.result.valid.sort_unstable();
        report.result.failures.sort();
        report.alpha_accuracy = if rest.is_empty() {
            1.0
        } else {
            alpha_correct as f64 / rest.len() as f64
        };
        report.timings = StageTimings {
            training_and_prediction: sess.training_and_prediction,
            evaluation,
        };
        debug_assert_eq!(
            report.result.valid.len()
                + report.result.unresolved
                + report.result.failures.len()
                + invalid_count(&report, sess.n_train),
            report.result.candidates,
            "every candidate is valid, invalid, unresolved or failed"
        );
        report
    })
}

fn invalid_count(report: &SmartPsiReport, n_train: usize) -> usize {
    let resolved =
        n_train + report.resolved_stage1 + report.recovered_stage2 + report.recovered_stage3;
    resolved - report.result.valid.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smart::{RunSpec, SmartPsiConfig};
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    fn deployment() -> (SmartPsi, PivotedQuery) {
        let g = psi_datasets::generators::erdos_renyi(400, 1600, 3, 21);
        let q = psi_datasets::rwr::extract_query_seeded(&g, 4, 7).unwrap();
        let cfg = SmartPsiConfig {
            min_candidates_for_ml: 10,
            ..SmartPsiConfig::default()
        };
        (SmartPsi::new(g, cfg), q)
    }

    fn counter(r: &crate::PsiResult, c: Counter) -> u64 {
        r.profile.as_ref().expect("run attaches a profile").counter(c)
    }

    #[test]
    fn cache_round_trips_and_shards() {
        let cache = PredictionCache::new(7); // rounds up to 8
        assert!(cache.is_empty());
        for i in 0..64u32 {
            let key = SignatureKey::exact(&[i as f32, 1.0, 2.0]);
            assert_eq!(cache.get(&key), None);
            cache.insert(key.clone(), (i as usize % 2, i as usize % 3));
            assert_eq!(cache.get(&key), Some((i as usize % 2, i as usize % 3)));
        }
        assert_eq!(cache.len(), 64);
    }

    #[test]
    fn work_stealing_matches_sequential_valid_set() {
        let (smart, q) = deployment();
        let seq = smart.run(&q, &RunSpec::new());
        for threads in [1, 2, 4] {
            let ws = smart.run(&q, &RunSpec::new().threads(threads));
            assert_eq!(ws.valid, seq.valid, "threads={threads}");
            assert_eq!(ws.candidates, seq.candidates);
            assert_eq!(ws.unresolved, 0);
            assert_eq!(
                counter(&ws, Counter::TrainedNodes),
                counter(&seq, Counter::TrainedNodes),
                "trains once"
            );
        }
    }

    #[test]
    fn stage_accounting_is_complete_under_work_stealing() {
        let (smart, q) = deployment();
        let r = smart.run(&q, &RunSpec::new().threads(4));
        let p = r.profile.as_ref().unwrap();
        assert_eq!(
            p.counter(Counter::TrainedNodes)
                + p.counter(Counter::ResolvedS1)
                + p.counter(Counter::RecoveredS2)
                + p.counter(Counter::RecoveredS3),
            r.candidates as u64,
            "no candidate lost or double-counted across workers"
        );
        assert!(p.reconciles());
    }

    #[test]
    fn pre_cancelled_pool_reports_everything_unresolved() {
        let (smart, q) = deployment();
        let flag = Arc::new(AtomicBool::new(true));
        let spec = RunSpec::new()
            .threads(4)
            .limits(EvalLimits::unlimited().with_cancel(flag));
        let r = smart.run(&q, &spec);
        assert!(r.valid.is_empty());
        assert_eq!(r.unresolved, r.candidates);
        assert!(r.profile.as_ref().unwrap().reconciles());
    }

    #[test]
    fn profiled_pool_run_merges_worker_buffers() {
        let (smart, q) = deployment();
        let rec = Arc::new(MetricsRecorder::new());
        let r = smart.run(&q, &RunSpec::new().threads(4).recorder(rec.clone()));
        let p = r.profile.as_ref().unwrap();
        assert!(p.recorded);
        assert!(p.counter(Counter::GrabSteals) > 0, "grabs were recorded");
        // Histogram of grab lengths saw every grab the workers took.
        let grabs: u64 = p.hists[Histogram::GrabLength as usize].iter().sum();
        assert_eq!(grabs, p.counter(Counter::GrabSteals));
        assert!(p.reconciles());
    }
}
