//! # psi-core
//!
//! The paper's contribution: dedicated Pivoted Subgraph Isomorphism
//! evaluation (§3–§4 of *"Pivoted Subgraph Isomorphism: The Optimist,
//! the Pessimist and the Realist"*, EDBT 2019).
//!
//! A PSI query asks for the distinct data nodes that can bind a query's
//! pivot node. Instead of enumerating all embeddings, this crate
//! evaluates each candidate node with one of two dedicated methods:
//!
//! * **The optimist** ([`Strategy::optimistic`]) — greedy depth-first
//!   search that sorts candidate extensions by *satisfiability score*
//!   (signature-guided) to reach a witness embedding quickly; great for
//!   valid nodes, wasteful for invalid ones. A *super-optimistic* first
//!   pass caps the candidates per level (paper: 10) to skip the sorting
//!   overhead when a match is easy.
//! * **The pessimist** ([`Strategy::pessimistic`]) — unguided search
//!   with aggressive signature pruning (Proposition 3.2) that proves
//!   invalid nodes fast, at extra per-node cost for valid ones.
//! * **The realist** ([`smart::SmartPsi`]) — the full SmartPSI system:
//!   a Random-Forest *node-type model* (α) picks the method per node, a
//!   *plan model* (β) picks a matching order per node, correct
//!   predictions are cached, and a *preemptive executor* detects
//!   mispredictions by budget timeout and recovers (§4.3).
//!
//! A [`twothread::two_threaded_psi`] baseline (run both methods in
//! parallel, first finisher wins, §4.1) is included for Figure 9.
//!
//! ```
//! use psi_graph::{builder::graph_from, PivotedQuery};
//! use psi_core::{single::psi_with_strategy, Strategy};
//!
//! // Figure 1 of the paper.
//! let g = graph_from(
//!     &[0, 1, 2, 2, 1, 0],
//!     &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (3, 4), (2, 4), (4, 5)],
//! ).unwrap();
//! let q = PivotedQuery::from_parts(&[0, 1, 2], &[(0, 1), (1, 2)], 0).unwrap();
//! let result = psi_with_strategy(&g, &q, Strategy::optimistic(), &Default::default());
//! assert_eq!(result.valid, vec![0, 5]); // u1 and u6
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod evaluator;
pub mod fault;
pub mod limits;
pub mod plan;
pub mod report;
pub mod single;
pub mod smart;
pub mod twothread;

pub use engine::adapt::{AdaptedModels, AdaptiveConfig, AdaptiveStats, MIN_REFIT_SAMPLES};
pub use engine::context::GraphContext;
pub use engine::deploy::{Deployment, DeploymentHandle, DeploymentSpec};
pub use engine::evolve::{EvolvingContext, UpdateError, UpdateReport};
pub use engine::exec::{PredictionCache, WorkStealingOptions};
pub use engine::net::{NetServer, NetServerConfig};
pub use engine::service::{
    DrainReport, JobHandle, PsiService, ServiceStats, ABORTED_BY_SHUTDOWN_REASON,
    DEADLINE_EXPIRED_REASON,
};
pub use engine::shard::{
    ShardBalance, ShardSpec, ShardedJobHandle, ShardedService, ShardedUpdateReport, SubmitError,
};
pub use evaluator::{NodeEvaluator, QueryContext, Verdict};
pub use fault::{
    install_quiet_panic_hook, ChaosMatcher, FaultKind, FaultPlan, NodeMatcher, PsiMatcher,
};
pub use limits::{EvalLimits, LimitTracker, POLL_INTERVAL};
pub use plan::{heuristic_plan, sample_plans, Plan};
pub use report::{FailureReport, FeedbackRow, NodeFailure, PsiResult, StageTimings};
pub use smart::{ExecutorKind, RetryPolicy, RunSpec, SmartPsi, SmartPsiConfig, SmartPsiReport};

/// Signature-store backends (re-exported `psi-signature` surface): the
/// [`SignatureStore`](psi_signature::SignatureStore) trait, the
/// [`SigStore`](psi_signature::SigStore) enum every
/// [`GraphContext`] carries, and the [`SigStoreKind`] selector used by
/// [`SmartPsiConfig`] and [`DeploymentSpec::sig_store`].
pub use psi_signature::{SigStore, SigStoreKind, SignatureStore};

/// The observability subsystem (re-exported `psi-obs`): the
/// [`Recorder`](psi_obs::Recorder) seam, the
/// [`MetricsRecorder`](psi_obs::MetricsRecorder) registry, and the
/// [`QueryProfile`](psi_obs::QueryProfile) attached to every
/// [`SmartPsi::run`] result.
pub use psi_obs as obs;

/// One-stop imports for driving SmartPSI:
///
/// ```
/// use psi_core::prelude::*;
/// ```
pub mod prelude {
    pub use crate::engine::adapt::{AdaptedModels, AdaptiveConfig, AdaptiveStats};
    pub use crate::engine::context::GraphContext;
    pub use crate::engine::deploy::{Deployment, DeploymentHandle, DeploymentSpec};
    pub use crate::engine::evolve::{EvolvingContext, UpdateError, UpdateReport};
    pub use crate::engine::service::{DrainReport, JobHandle, PsiService, ServiceStats};
    pub use crate::engine::shard::{ShardSpec, ShardedService, SubmitError};
    pub use psi_graph::GraphUpdate;
    pub use crate::fault::FaultPlan;
    pub use crate::limits::EvalLimits;
    pub use crate::report::{FailureReport, FeedbackRow, PsiResult};
    pub use crate::smart::{
        ExecutorKind, RetryPolicy, RunSpec, SmartPsi, SmartPsiConfig, SmartPsiReport,
    };
    pub use crate::Strategy;
    pub use psi_obs::{MetricsRecorder, NoopRecorder, QueryProfile, Recorder};
    pub use psi_signature::{SigStore, SigStoreKind, SignatureStore};
}

/// Per-node evaluation strategy (the `T` flag of Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Greedy guided search; `cap` limits candidates per level when in
    /// the super-optimistic first pass.
    Optimistic {
        /// Candidate cap for the super-optimistic pass (`None`
        /// disables the pass).
        super_cap: Option<usize>,
    },
    /// Signature-pruned unguided search.
    Pessimistic,
}

impl Strategy {
    /// The paper's optimistic method with its default super-optimistic
    /// candidate cap of 10.
    pub fn optimistic() -> Self {
        Strategy::Optimistic { super_cap: Some(10) }
    }

    /// The optimistic method without the super-optimistic pass.
    pub fn plain_optimistic() -> Self {
        Strategy::Optimistic { super_cap: None }
    }

    /// The pessimistic method.
    pub fn pessimistic() -> Self {
        Strategy::Pessimistic
    }

    /// The opposite method, used by the preemptive executor's recovery
    /// path.
    pub fn opposite(self) -> Self {
        match self {
            Strategy::Optimistic { .. } => Strategy::Pessimistic,
            Strategy::Pessimistic => Strategy::optimistic(),
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Optimistic { .. } => "optimistic",
            Strategy::Pessimistic => "pessimistic",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposite_flips() {
        assert_eq!(Strategy::optimistic().opposite(), Strategy::Pessimistic);
        assert_eq!(
            Strategy::pessimistic().opposite(),
            Strategy::Optimistic { super_cap: Some(10) }
        );
    }

    #[test]
    fn names() {
        assert_eq!(Strategy::optimistic().name(), "optimistic");
        assert_eq!(Strategy::pessimistic().name(), "pessimistic");
    }
}
