//! Deterministic fault injection and panic isolation for the PSI
//! executors.
//!
//! SmartPSI's premise is graceful degradation: when the optimistically
//! predicted matcher misbehaves, the realist recovers (§4.3). This
//! module supplies the machinery to *prove* that property instead of
//! hoping for it:
//!
//! * [`NodeMatcher`] — the per-node evaluation seam every executor
//!   calls through. [`NodeEvaluator`] is the production implementation.
//! * [`ChaosMatcher`] — a wrapper that injects faults ([`FaultKind`])
//!   on chosen node ids according to a seeded [`FaultPlan`]: panics,
//!   spurious interrupts, step-budget burn and (at the pool level)
//!   whole-worker death.
//! * [`eval_isolated`] — the `catch_unwind` shim that turns a panic
//!   anywhere below the per-node call into a structured
//!   [`IsolatedOutcome::Panicked`] the retry ladder can act on.
//!
//! Faults are keyed by **data node id**, not by worker or timing, and
//! each keyed entry carries its own fire counter, so a fault schedule
//! replays identically for any worker count, grab size or cache mode —
//! the differential tests in `crates/core/tests/fault_injection.rs`
//! rely on exactly this to compare faulted runs against clean ones
//! bit-for-bit.
//!
//! Panic hygiene: injected panics carry an [`InjectedPanic`] payload;
//! [`install_quiet_panic_hook`] suppresses the default hook's stderr
//! spew for those payloads only, so fault-heavy test suites stay
//! readable while genuine panics still print.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use psi_graph::hash::{FxHashMap, FxHashSet, FxHasher};
use psi_graph::NodeId;

use crate::evaluator::{CompiledPlan, NodeEvaluator, QueryContext, Verdict};
use crate::limits::EvalLimits;
use crate::Strategy;

/// A fault entry fires on every evaluation of its node.
pub const ALWAYS: u32 = u32::MAX;

/// A fault entry fires on the first evaluation of its node only.
pub const ONCE: u32 = 1;

/// What a [`ChaosMatcher`] does when a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the matcher (payload: [`InjectedPanic`]).
    Panic,
    /// Return [`Verdict::Interrupted`] without touching the search —
    /// a misbehaving matcher claiming its budget fired.
    SpuriousInterrupt,
    /// Burn this many steps off the evaluation's budget before the
    /// real search starts (a matcher wasting its `2×AvgT` allowance).
    BurnSteps(u64),
    /// Kill the whole worker thread that pulled this node from the
    /// queue. Handled by the work-stealing pool, not the matcher;
    /// [`FaultPlan::draw`] never returns it.
    KillWorker,
}

#[derive(Debug)]
struct FaultEntry {
    kind: FaultKind,
    /// Remaining fires; [`ALWAYS`] never decrements.
    remaining: AtomicU32,
}

/// Seeded rates for [`FaultPlan::seeded`]: each node draws at most one
/// one-shot fault, chosen by hashing `(seed, node)`.
#[derive(Debug, Clone, Copy)]
struct RandomFaults {
    seed: u64,
    panic_rate: f64,
    interrupt_rate: f64,
    burn_rate: f64,
}

/// A deterministic schedule of faults keyed by data node id.
///
/// Two modes, combinable:
///
/// * **Explicit** — [`FaultPlan::inject`] arms one [`FaultKind`] on one
///   node with a fire budget ([`ONCE`], [`ALWAYS`], or any count).
/// * **Seeded** — [`FaultPlan::seeded`] arms a pseudo-random one-shot
///   fault on a rate-controlled fraction of nodes, derived purely from
///   `hash(seed, node)` so the schedule is identical across runs,
///   worker counts and platforms.
#[derive(Debug, Default)]
pub struct FaultPlan {
    entries: FxHashMap<NodeId, FaultEntry>,
    random: Option<RandomFaults>,
    /// Nodes whose seeded one-shot fault has already fired.
    fired: Mutex<FxHashSet<NodeId>>,
}

impl FaultPlan {
    /// A plan with no faults: a [`ChaosMatcher`] carrying it is
    /// behaviorally identical to the bare evaluator.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Arm `kind` on `node`, firing at most `fires` times
    /// ([`ALWAYS`] = every evaluation). Replaces any earlier entry for
    /// the node.
    pub fn inject(mut self, node: NodeId, kind: FaultKind, fires: u32) -> Self {
        self.entries.insert(
            node,
            FaultEntry {
                kind,
                remaining: AtomicU32::new(fires),
            },
        );
        self
    }

    /// Arm a sticky panic ([`ALWAYS`]) on each listed node — the
    /// "this node can never be evaluated" worst case.
    pub fn panic_on(nodes: &[NodeId]) -> Self {
        nodes
            .iter()
            .fold(Self::empty(), |p, &n| p.inject(n, FaultKind::Panic, ALWAYS))
    }

    /// Rate-based chaos: every node independently draws at most one
    /// one-shot fault from `hash(seed, node)` — `panic_rate` of nodes
    /// panic once, the next `interrupt_rate` spuriously interrupt
    /// once, the next `burn_rate` burn budget once. All one-shot, so a
    /// healthy retry ladder recovers every node and the run stays
    /// exact.
    pub fn seeded(seed: u64, panic_rate: f64, interrupt_rate: f64, burn_rate: f64) -> Self {
        Self {
            random: Some(RandomFaults {
                seed,
                panic_rate,
                interrupt_rate,
                burn_rate,
            }),
            ..Self::default()
        }
    }

    /// Whether the plan can never fire anything.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.random.is_none()
    }

    /// Draw the fault (if any) for evaluating `node` now, consuming
    /// one fire. [`FaultKind::KillWorker`] entries are never returned
    /// here — they belong to [`FaultPlan::take_worker_kill`].
    pub fn draw(&self, node: NodeId) -> Option<FaultKind> {
        if let Some(e) = self.entries.get(&node) {
            if e.kind != FaultKind::KillWorker && Self::consume(&e.remaining) {
                return Some(e.kind);
            }
            return None;
        }
        let r = self.random?;
        let u = Self::unit_hash(r.seed, node);
        let kind = if u < r.panic_rate {
            FaultKind::Panic
        } else if u < r.panic_rate + r.interrupt_rate {
            FaultKind::SpuriousInterrupt
        } else if u < r.panic_rate + r.interrupt_rate + r.burn_rate {
            // Burn a budget-sized chunk; 4096 comfortably exceeds the
            // trained `2×AvgT` budgets of small workloads.
            FaultKind::BurnSteps(4096)
        } else {
            return None;
        };
        if !self.fired.lock().insert(node) {
            return None; // one-shot: already fired for this node
        }
        Some(kind)
    }

    /// Whether pulling `node` from the queue should kill the worker
    /// (consumes one fire). Only the pool consults this; the requeue
    /// path deliberately does not, so a killed node recovers inline.
    pub fn take_worker_kill(&self, node: NodeId) -> bool {
        match self.entries.get(&node) {
            Some(e) if e.kind == FaultKind::KillWorker => Self::consume(&e.remaining),
            _ => false,
        }
    }

    /// Project this plan onto a shard's local id space.
    ///
    /// `mapping` yields `(global, local)` pairs for every node the
    /// shard can evaluate as a candidate (faults are keyed by candidate
    /// id, and each global node is a candidate in exactly one shard).
    /// The projection is a standalone plan in local-id space:
    ///
    /// * explicit entries (including [`FaultKind::KillWorker`]) are
    ///   copied with a snapshot of their remaining fire budget;
    /// * seeded faults are *materialized*: the `hash(seed, global)`
    ///   draw each mapped node would make is resolved now and armed as
    ///   an explicit one-shot entry on the local id, so the shard
    ///   replays exactly the schedule the global plan would have
    ///   produced.
    ///
    /// Nodes whose seeded one-shot already fired on `self` are not
    /// re-armed.
    pub fn project(&self, mapping: impl IntoIterator<Item = (NodeId, NodeId)>) -> FaultPlan {
        let mut out = FaultPlan::empty();
        let fired = self.fired.lock();
        for (global, local) in mapping {
            if let Some(e) = self.entries.get(&global) {
                out.entries.insert(
                    local,
                    FaultEntry {
                        kind: e.kind,
                        remaining: AtomicU32::new(e.remaining.load(Ordering::Relaxed)),
                    },
                );
                continue;
            }
            let Some(r) = self.random else { continue };
            if fired.contains(&global) {
                continue;
            }
            let u = Self::unit_hash(r.seed, global);
            let kind = if u < r.panic_rate {
                FaultKind::Panic
            } else if u < r.panic_rate + r.interrupt_rate {
                FaultKind::SpuriousInterrupt
            } else if u < r.panic_rate + r.interrupt_rate + r.burn_rate {
                FaultKind::BurnSteps(4096)
            } else {
                continue;
            };
            out.entries.insert(
                local,
                FaultEntry {
                    kind,
                    remaining: AtomicU32::new(ONCE),
                },
            );
        }
        out
    }

    fn consume(remaining: &AtomicU32) -> bool {
        loop {
            let r = remaining.load(Ordering::Relaxed);
            if r == 0 {
                return false;
            }
            if r == ALWAYS {
                return true;
            }
            if remaining
                .compare_exchange(r, r - 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return true;
            }
        }
    }

    /// Deterministic uniform draw in `[0, 1)` from `(seed, node)`.
    fn unit_hash(seed: u64, node: NodeId) -> f64 {
        use std::hash::{Hash, Hasher};
        let mut h = FxHasher::default();
        seed.hash(&mut h);
        node.hash(&mut h);
        // 53 mantissa bits → exact double in [0, 1).
        (h.finish() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Panic payload used by injected faults, so the quiet hook and the
/// reason extractor can tell them apart from genuine panics.
#[derive(Debug)]
pub struct InjectedPanic {
    /// The node whose evaluation panicked.
    pub node: NodeId,
}

/// Install (once, process-wide) a panic hook that suppresses the
/// default stderr report for [`InjectedPanic`] payloads and defers to
/// the previous hook for everything else. Call from fault-injection
/// tests and chaos drills; a no-op after the first call.
pub fn install_quiet_panic_hook() {
    use std::sync::Once;
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                previous(info);
            }
        }));
    });
}

/// The per-node evaluation seam shared by every executor. The
/// production implementation is [`NodeEvaluator`]; [`ChaosMatcher`]
/// wraps any implementation with fault injection.
pub trait NodeMatcher {
    /// Evaluate `candidate` with `strategy` along `plan` under
    /// `limits`; returns the verdict and steps spent. May panic — all
    /// executors call through [`eval_isolated`], which contains the
    /// blast radius to the single node.
    fn eval_node(
        &mut self,
        ctx: &QueryContext,
        plan: &CompiledPlan,
        candidate: NodeId,
        strategy: Strategy,
        limits: &EvalLimits,
    ) -> (Verdict, u64);
}

impl NodeMatcher for NodeEvaluator<'_> {
    fn eval_node(
        &mut self,
        ctx: &QueryContext,
        plan: &CompiledPlan,
        candidate: NodeId,
        strategy: Strategy,
        limits: &EvalLimits,
    ) -> (Verdict, u64) {
        self.evaluate(ctx, plan, candidate, strategy, limits)
    }
}

/// A [`NodeMatcher`] that injects the faults of a [`FaultPlan`] into
/// an inner matcher. Used by the differential fault tests and the CLI
/// `--fault-seed` chaos drill.
pub struct ChaosMatcher<M> {
    inner: M,
    plan: Arc<FaultPlan>,
}

impl<M: NodeMatcher> ChaosMatcher<M> {
    /// Wrap `inner` with the fault schedule `plan`.
    pub fn new(inner: M, plan: Arc<FaultPlan>) -> Self {
        Self { inner, plan }
    }
}

impl<M: NodeMatcher> NodeMatcher for ChaosMatcher<M> {
    fn eval_node(
        &mut self,
        ctx: &QueryContext,
        plan: &CompiledPlan,
        candidate: NodeId,
        strategy: Strategy,
        limits: &EvalLimits,
    ) -> (Verdict, u64) {
        match self.plan.draw(candidate) {
            Some(FaultKind::Panic) => {
                std::panic::panic_any(InjectedPanic { node: candidate })
            }
            Some(FaultKind::SpuriousInterrupt) => (Verdict::Interrupted, 0),
            Some(FaultKind::BurnSteps(n)) => {
                // Shrink the budget by the burned steps; if nothing is
                // left the "search" is interrupted before it starts.
                let mut l = limits.clone();
                if l.max_steps != 0 {
                    if l.max_steps <= n {
                        return (Verdict::Interrupted, n);
                    }
                    l.max_steps -= n;
                }
                let (v, s) = self.inner.eval_node(ctx, plan, candidate, strategy, &l);
                (v, s + n)
            }
            Some(FaultKind::KillWorker) | None => {
                self.inner.eval_node(ctx, plan, candidate, strategy, limits)
            }
        }
    }
}

/// Either the bare evaluator or its chaos-wrapped version — what
/// [`crate::SmartPsi`] hands each executor worker, chosen by whether
/// the deployment config carries a [`FaultPlan`].
pub enum PsiMatcher<'g> {
    /// Production path: no fault schedule.
    Plain(NodeEvaluator<'g>),
    /// Chaos drill: every evaluation consults the plan first.
    Chaos(ChaosMatcher<NodeEvaluator<'g>>),
}

impl<'g> PsiMatcher<'g> {
    /// Build from an evaluator plus an optional fault schedule.
    pub fn new(ev: NodeEvaluator<'g>, fault: Option<&Arc<FaultPlan>>) -> Self {
        match fault {
            Some(plan) => PsiMatcher::Chaos(ChaosMatcher::new(ev, plan.clone())),
            None => PsiMatcher::Plain(ev),
        }
    }
}

impl NodeMatcher for PsiMatcher<'_> {
    fn eval_node(
        &mut self,
        ctx: &QueryContext,
        plan: &CompiledPlan,
        candidate: NodeId,
        strategy: Strategy,
        limits: &EvalLimits,
    ) -> (Verdict, u64) {
        match self {
            PsiMatcher::Plain(m) => m.eval_node(ctx, plan, candidate, strategy, limits),
            PsiMatcher::Chaos(m) => m.eval_node(ctx, plan, candidate, strategy, limits),
        }
    }
}

/// Outcome of one isolated per-node evaluation attempt.
#[derive(Debug)]
pub enum IsolatedOutcome {
    /// The matcher returned normally.
    Finished(Verdict, u64),
    /// The matcher panicked; the payload was converted to a reason
    /// string and the panic contained to this node.
    Panicked(String),
}

/// Run one per-node evaluation inside `catch_unwind` (when `isolate`
/// is set), converting a panic anywhere below the call into
/// [`IsolatedOutcome::Panicked`].
///
/// Soundness of reusing the matcher afterwards: [`NodeEvaluator`]'s
/// only cross-candidate state is the generation-stamped scratch, and a
/// fresh generation stamp invalidates whatever a unwound search left
/// behind, so a panicked evaluation cannot poison the next one.
#[allow(clippy::too_many_arguments)]
pub fn eval_isolated(
    m: &mut dyn NodeMatcher,
    ctx: &QueryContext,
    plan: &CompiledPlan,
    candidate: NodeId,
    strategy: Strategy,
    limits: &EvalLimits,
    isolate: bool,
) -> IsolatedOutcome {
    if !isolate {
        let (v, s) = m.eval_node(ctx, plan, candidate, strategy, limits);
        return IsolatedOutcome::Finished(v, s);
    }
    match catch_unwind(AssertUnwindSafe(|| {
        m.eval_node(ctx, plan, candidate, strategy, limits)
    })) {
        Ok((v, s)) => IsolatedOutcome::Finished(v, s),
        Err(payload) => IsolatedOutcome::Panicked(panic_reason(payload.as_ref())),
    }
}

/// Human-readable reason from a caught panic payload.
pub fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(p) = payload.downcast_ref::<InjectedPanic>() {
        format!("injected panic (node {})", p.node)
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let p = FaultPlan::empty();
        assert!(p.is_empty());
        for n in 0..100 {
            assert_eq!(p.draw(n), None);
            assert!(!p.take_worker_kill(n));
        }
    }

    #[test]
    fn once_entry_fires_exactly_once() {
        let p = FaultPlan::empty().inject(5, FaultKind::SpuriousInterrupt, ONCE);
        assert_eq!(p.draw(5), Some(FaultKind::SpuriousInterrupt));
        assert_eq!(p.draw(5), None);
        assert_eq!(p.draw(4), None);
    }

    #[test]
    fn always_entry_keeps_firing() {
        let p = FaultPlan::panic_on(&[3]);
        for _ in 0..10 {
            assert_eq!(p.draw(3), Some(FaultKind::Panic));
        }
    }

    #[test]
    fn counted_entry_fires_n_times() {
        let p = FaultPlan::empty().inject(1, FaultKind::BurnSteps(10), 3);
        for _ in 0..3 {
            assert!(p.draw(1).is_some());
        }
        assert_eq!(p.draw(1), None);
    }

    #[test]
    fn worker_kill_is_invisible_to_draw() {
        let p = FaultPlan::empty().inject(9, FaultKind::KillWorker, ONCE);
        assert_eq!(p.draw(9), None);
        assert!(p.take_worker_kill(9));
        assert!(!p.take_worker_kill(9), "one-shot kill");
    }

    #[test]
    fn seeded_plan_is_deterministic_and_one_shot() {
        let a = FaultPlan::seeded(42, 0.2, 0.2, 0.2);
        let b = FaultPlan::seeded(42, 0.2, 0.2, 0.2);
        let mut fired = 0usize;
        for n in 0..500 {
            let fa = a.draw(n);
            let fb = b.draw(n);
            assert_eq!(fa, fb, "same seed, same schedule (node {n})");
            if fa.is_some() {
                fired += 1;
                assert_eq!(a.draw(n), None, "seeded faults are one-shot");
            }
        }
        // ~60% of 500 nodes; loose bounds, the point is "some but not all".
        assert!(fired > 200 && fired < 400, "fired {fired} of 500");
        // A different seed gives a different schedule somewhere.
        let c = FaultPlan::seeded(43, 0.2, 0.2, 0.2);
        let differs = (0..500).any(|n| c.draw(n) != FaultPlan::seeded(42, 0.2, 0.2, 0.2).draw(n));
        assert!(differs);
    }

    #[test]
    fn panic_reason_formats() {
        assert_eq!(
            panic_reason(&InjectedPanic { node: 7 }),
            "injected panic (node 7)"
        );
        assert_eq!(panic_reason(&"boom"), "panic: boom");
        assert_eq!(panic_reason(&String::from("bang")), "panic: bang");
        assert_eq!(panic_reason(&42u32), "panic: <non-string payload>");
    }
}
