//! Query execution plans: matching orders over query nodes.
//!
//! A plan is an order in which query nodes are bound during a
//! per-candidate PSI evaluation. Position 0 is always the pivot (the
//! candidate data node binds it), and every later node must be adjacent
//! to an earlier one so the partial embedding stays connected. Model β
//! (§4.2.2) learns to pick a good plan per data node; the
//! selectivity-based [`heuristic_plan`] is the fallback used by the
//! plain optimistic/pessimistic runners and by recovery stage 3.

use psi_graph::{Graph, NodeId, PivotedQuery};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A matching order; `plan[0]` is the query pivot.
pub type Plan = Vec<NodeId>;

/// Whether `plan` is a valid connected matching order for `query`
/// starting at the pivot.
pub fn plan_is_valid(query: &PivotedQuery, plan: &[NodeId]) -> bool {
    let q = query.graph();
    if plan.len() != q.node_count() || plan.first() != Some(&query.pivot()) {
        return false;
    }
    let mut placed = vec![false; q.node_count()];
    for (i, &v) in plan.iter().enumerate() {
        if (v as usize) >= q.node_count() || placed[v as usize] {
            return false;
        }
        if i > 0 && !q.neighbors(v).iter().any(|&n| placed[n as usize]) {
            return false;
        }
        placed[v as usize] = true;
    }
    true
}

/// The selectivity heuristic plan (the strategy of GraphQL/TurboIso
/// style optimizers the paper cites): after the pivot, repeatedly pick
/// the connected query node whose label is rarest in the data graph,
/// breaking ties by higher query degree then lower id.
pub fn heuristic_plan(g: &Graph, query: &PivotedQuery) -> Plan {
    let q = query.graph();
    let n = q.node_count();
    let mut plan = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    plan.push(query.pivot());
    placed[query.pivot() as usize] = true;
    while plan.len() < n {
        let mut best: Option<NodeId> = None;
        let mut best_key = (usize::MAX, usize::MAX, u32::MAX);
        for v in 0..n as NodeId {
            if placed[v as usize] || !q.neighbors(v).iter().any(|&w| placed[w as usize]) {
                continue;
            }
            let key = (
                g.label_frequency(q.label(v)),
                usize::MAX - q.degree(v),
                v,
            );
            if key < best_key {
                best_key = key;
                best = Some(v);
            }
        }
        let v = best.expect("query is connected");
        placed[v as usize] = true;
        plan.push(v);
    }
    plan
}

/// A uniformly random valid plan.
pub fn random_plan(query: &PivotedQuery, rng: &mut StdRng) -> Plan {
    let q = query.graph();
    let n = q.node_count();
    let mut plan = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    plan.push(query.pivot());
    placed[query.pivot() as usize] = true;
    while plan.len() < n {
        let frontier: Vec<NodeId> = (0..n as NodeId)
            .filter(|&v| {
                !placed[v as usize] && q.neighbors(v).iter().any(|&w| placed[w as usize])
            })
            .collect();
        let v = frontier[rng.gen_range(0..frontier.len())];
        placed[v as usize] = true;
        plan.push(v);
    }
    plan
}

/// Sample up to `count` *distinct* plans: the heuristic plan first,
/// then random plans (§4.2.2 trains Model β on "a small sample of these
/// plans" rather than all `|V_S|!`).
pub fn sample_plans(g: &Graph, query: &PivotedQuery, count: usize, seed: u64) -> Vec<Plan> {
    let mut plans: Vec<Plan> = Vec::with_capacity(count);
    if count == 0 {
        return plans;
    }
    plans.push(heuristic_plan(g, query));
    let mut rng = StdRng::seed_from_u64(seed);
    // Bounded attempts: tiny queries have few distinct plans.
    let mut attempts = 0;
    while plans.len() < count && attempts < count * 20 {
        attempts += 1;
        let p = random_plan(query, &mut rng);
        if !plans.contains(&p) {
            plans.push(p);
        }
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_graph::builder::graph_from;

    fn sample_query() -> (Graph, PivotedQuery) {
        // Data graph: labels 0 appears 4x, 1 appears 1x, 2 appears 2x.
        let g = graph_from(
            &[0, 0, 0, 0, 1, 2, 2],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (0, 6)],
        )
        .unwrap();
        // Query: pivot(label 0) - a(label 1) - b(label 2), path.
        let q = PivotedQuery::from_parts(&[0, 1, 2], &[(0, 1), (1, 2)], 0).unwrap();
        (g, q)
    }

    #[test]
    fn heuristic_starts_at_pivot_and_is_valid() {
        let (g, q) = sample_query();
        let p = heuristic_plan(&g, &q);
        assert_eq!(p[0], 0);
        assert!(plan_is_valid(&q, &p));
        // label 1 is rarer than label 2 → node 1 before node 2.
        assert_eq!(p, vec![0, 1, 2]);
    }

    #[test]
    fn validity_checks() {
        let (_, q) = sample_query();
        assert!(plan_is_valid(&q, &[0, 1, 2]));
        assert!(!plan_is_valid(&q, &[1, 0, 2]), "must start at pivot");
        assert!(!plan_is_valid(&q, &[0, 2, 1]), "2 not adjacent to pivot");
        assert!(!plan_is_valid(&q, &[0, 1]), "wrong length");
        assert!(!plan_is_valid(&q, &[0, 1, 1]), "duplicate");
    }

    #[test]
    fn random_plans_are_valid() {
        let (_, q) = sample_query();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let p = random_plan(&q, &mut rng);
            assert!(plan_is_valid(&q, &p));
        }
    }

    #[test]
    fn sample_plans_distinct_and_capped() {
        // A star query has (n-1)! orders of its arms; sample should
        // find several distinct ones.
        let q = PivotedQuery::from_parts(&[0, 1, 2, 3], &[(0, 1), (0, 2), (0, 3)], 0).unwrap();
        let g = graph_from(&[0, 1, 2, 3], &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let plans = sample_plans(&g, &q, 6, 1);
        assert_eq!(plans.len(), 6);
        for p in &plans {
            assert!(plan_is_valid(&q, p));
        }
        for i in 0..plans.len() {
            for j in (i + 1)..plans.len() {
                assert_ne!(plans[i], plans[j]);
            }
        }
    }

    #[test]
    fn sample_plans_saturates_on_tiny_queries() {
        // A 2-node query has exactly one valid plan.
        let q = PivotedQuery::from_parts(&[0, 1], &[(0, 1)], 0).unwrap();
        let g = graph_from(&[0, 1], &[(0, 1)]).unwrap();
        let plans = sample_plans(&g, &q, 8, 1);
        assert_eq!(plans.len(), 1);
    }

    #[test]
    fn single_node_query_plan() {
        let q = PivotedQuery::from_parts(&[3], &[], 0).unwrap();
        let g = graph_from(&[3], &[]).unwrap();
        let p = heuristic_plan(&g, &q);
        assert_eq!(p, vec![0]);
        assert!(plan_is_valid(&q, &p));
    }
}
