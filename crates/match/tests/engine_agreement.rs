//! Property tests: every engine must agree on embedding counts and PSI
//! answers for randomized graph/query pairs, and every reported
//! embedding must verify.

use proptest::prelude::*;
use psi_datasets::rwr::extract_query_seeded;
use psi_graph::builder::graph_from;
use psi_graph::{Graph, PivotedQuery};
use psi_match::common::verify_embedding;
use psi_match::{psi_by_enumeration, Engine, SearchBudget, SubgraphMatcher};

/// Strategy: a small random labeled graph (6–14 nodes) as label vector
/// plus an edge subset.
fn small_graph() -> impl Strategy<Value = Graph> {
    (6usize..=14, any::<u64>()).prop_map(|(n, seed)| {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let labels: Vec<u16> = (0..n).map(|_| rng.gen_range(0..3)).collect();
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.gen_bool(0.35) {
                    edges.push((u, v));
                }
            }
        }
        graph_from(&labels, &edges).expect("valid random graph")
    })
}

/// Extract a connected pivoted query from the graph, if possible.
fn query_of(g: &Graph, size: usize, seed: u64) -> Option<PivotedQuery> {
    extract_query_seeded(g, size, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_engines_agree_on_counts(g in small_graph(), size in 2usize..=4, seed in any::<u64>()) {
        let Some(q) = query_of(&g, size, seed) else { return Ok(()) };
        let budget = SearchBudget::unlimited();
        let counts: Vec<u64> = Engine::ALL
            .iter()
            .map(|e| e.count(&g, q.graph(), &budget).0)
            .collect();
        for (i, &c) in counts.iter().enumerate() {
            prop_assert_eq!(c, counts[0], "{} disagrees with {}", Engine::ALL[i].name(), Engine::ALL[0].name());
        }
    }

    #[test]
    fn all_engines_agree_on_psi(g in small_graph(), size in 2usize..=4, seed in any::<u64>()) {
        let Some(q) = query_of(&g, size, seed) else { return Ok(()) };
        let budget = SearchBudget::unlimited();
        let answers: Vec<Vec<u32>> = Engine::ALL
            .iter()
            .map(|e| psi_by_enumeration(e, &g, &q, &budget).valid)
            .collect();
        for (i, a) in answers.iter().enumerate() {
            prop_assert_eq!(a, &answers[0], "{} PSI disagrees", Engine::ALL[i].name());
        }
        // TurboIso⁺ (first-match early stop) must also agree.
        let plus = psi_match::turboiso::turboiso_plus_psi(&g, &q, &budget);
        prop_assert_eq!(&plus.valid, &answers[0], "TurboIso+ PSI disagrees");
    }

    #[test]
    fn embeddings_verify_for_every_engine(g in small_graph(), size in 2usize..=4, seed in any::<u64>()) {
        let Some(q) = query_of(&g, size, seed) else { return Ok(()) };
        let budget = SearchBudget::unlimited();
        for e in Engine::ALL {
            let r = e.find_all(&g, q.graph(), &budget);
            for emb in &r.embeddings {
                prop_assert!(verify_embedding(&g, q.graph(), emb), "{} produced bad embedding", e.name());
            }
            // No duplicates.
            let mut sorted = r.embeddings.clone();
            sorted.sort();
            let before = sorted.len();
            sorted.dedup();
            prop_assert_eq!(before, sorted.len(), "{} produced duplicate embeddings", e.name());
        }
    }

    #[test]
    fn budgeted_search_finds_subset(g in small_graph(), size in 2usize..=4, seed in any::<u64>()) {
        let Some(q) = query_of(&g, size, seed) else { return Ok(()) };
        let full = Engine::Vf2.find_all(&g, q.graph(), &SearchBudget::unlimited());
        let capped = Engine::Vf2.find_all(&g, q.graph(), &SearchBudget::steps(25));
        prop_assert!(capped.embeddings.len() <= full.embeddings.len());
        for e in &capped.embeddings {
            prop_assert!(full.embeddings.contains(e));
        }
    }

    #[test]
    fn find_first_consistent_with_count(g in small_graph(), size in 2usize..=4, seed in any::<u64>()) {
        let Some(q) = query_of(&g, size, seed) else { return Ok(()) };
        let budget = SearchBudget::unlimited();
        let (n, _) = Engine::TurboIso.count(&g, q.graph(), &budget);
        let (first, _) = Engine::TurboIso.find_first(&g, q.graph(), &budget);
        prop_assert_eq!(n > 0, first.is_some());
        if let Some(e) = first {
            prop_assert!(verify_embedding(&g, q.graph(), &e));
        }
    }
}
