//! CFL-Match (Bi, Chang, Lin, Qin, Zhang — SIGMOD 2016), the strongest
//! competitor in the paper's evaluation.
//!
//! CFL-Match's published ideas, all implemented here:
//!
//! * **Core-forest-leaf decomposition**: the query's 2-core is matched
//!   first (it is the most selective, densely constrained part), then
//!   the forest (trees hanging off the core), and the degree-1 leaves
//!   last — *postponing Cartesian products* that leaves would otherwise
//!   multiply into every partial embedding.
//! * **Candidate-space index (CPI)**: a BFS tree over the query rooted
//!   in the core; per-node candidate sets are computed top-down with
//!   parent-edge, label, degree and NLF filters, then refined bottom-up
//!   (a candidate survives only if every query-tree child has an
//!   adjacent surviving candidate).
//! * **Selective root**: the core node minimizing
//!   `|C(v)| / deg(v)`.
//!
//! The compressed leaf-mapping representation of the original (sharing
//! identical leaf candidate lists across embeddings) is not needed
//! here because downstream consumers require explicit embeddings; the
//! decomposition order delivers the algorithmic effect.

use psi_graph::{Graph, NodeId};

use crate::budget::{BudgetOutcome, BudgetTracker, SearchBudget};
use crate::common::{
    label_degree_candidates, nlf_satisfied, MatchStats, OrderedBacktracker, SubgraphMatcher,
};

/// The CFL-Match engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct CflMatch;

/// Structural class of a query node in the decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum NodeClass {
    /// Member of the query's 2-core.
    Core,
    /// Non-leaf node outside the core (tree part).
    Forest,
    /// Degree-1 node.
    Leaf,
}

/// Compute the core-forest-leaf class of every query node.
///
/// The 2-core is obtained by iteratively peeling degree-≤1 nodes; if
/// the query is a tree (empty 2-core), the node set that remains after
/// peeling exactly the degree-1 nodes once is treated as the core
/// surrogate, matching CFL's handling of tree queries.
pub fn classify(q: &Graph) -> Vec<NodeClass> {
    let n = q.node_count();
    let mut deg: Vec<usize> = (0..n as NodeId).map(|v| q.degree(v)).collect();
    let mut removed = vec![false; n];
    // Peel to the 2-core.
    let mut stack: Vec<NodeId> = (0..n as NodeId).filter(|&v| deg[v as usize] <= 1).collect();
    let mut remaining = n;
    while let Some(v) = stack.pop() {
        if removed[v as usize] {
            continue;
        }
        removed[v as usize] = true;
        remaining -= 1;
        for &w in q.neighbors(v) {
            if !removed[w as usize] {
                deg[w as usize] -= 1;
                if deg[w as usize] <= 1 {
                    stack.push(w);
                }
            }
        }
    }
    let mut class = vec![NodeClass::Leaf; n];
    if remaining > 0 {
        for v in 0..n {
            class[v] = if !removed[v] {
                NodeClass::Core
            } else if q.degree(v as NodeId) == 1 {
                NodeClass::Leaf
            } else {
                NodeClass::Forest
            };
        }
    } else {
        // Tree query: non-leaves act as the core surrogate.
        for (v, cl) in class.iter_mut().enumerate() {
            *cl = if q.degree(v as NodeId) <= 1 && n > 1 {
                NodeClass::Leaf
            } else {
                NodeClass::Core
            };
        }
    }
    class
}

/// The candidate-space index: per-query-node candidate sets after the
/// top-down and bottom-up passes.
struct CandidateSpace {
    cands: Vec<Vec<NodeId>>,
    root: NodeId,
}

impl CflMatch {
    fn build_cpi(g: &Graph, q: &Graph, class: &[NodeClass], tracker: &mut BudgetTracker<'_>) -> Option<CandidateSpace> {
        let n = q.node_count();
        // Initial candidates, label/degree/NLF-filtered.
        let mut cands: Vec<Vec<NodeId>> = Vec::with_capacity(n);
        for v in q.node_ids() {
            let set: Vec<NodeId> = label_degree_candidates(g, q, v)
                .filter(|&u| nlf_satisfied(g, q, v, u))
                .collect();
            if set.is_empty() {
                return None;
            }
            cands.push(set);
        }
        // Root: core node minimizing |C(v)|/deg(v).
        let mut root = 0 as NodeId;
        let mut best = f64::INFINITY;
        for v in q.node_ids() {
            if class[v as usize] == NodeClass::Core {
                let r = cands[v as usize].len() as f64 / q.degree(v).max(1) as f64;
                if r < best {
                    best = r;
                    root = v;
                }
            }
        }
        // BFS tree from the root.
        let mut parent = vec![u32::MAX; n];
        let mut bfs = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        seen[root as usize] = true;
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(v) = queue.pop_front() {
            bfs.push(v);
            for &w in q.neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    parent[w as usize] = v;
                    queue.push_back(w);
                }
            }
        }
        // Top-down: child candidates must be adjacent (with the right
        // edge label) to some parent candidate.
        for &v in bfs.iter().skip(1) {
            let p = parent[v as usize];
            let el = q.edge_label(v, p).expect("tree edge");
            let parent_cands = std::mem::take(&mut cands[p as usize]);
            cands[v as usize].retain(|&u| {
                if !tracker.step() {
                    return true; // budget handled by caller via outcome
                }
                parent_cands
                    .iter()
                    .any(|&pc| g.edge_label(u, pc) == Some(el))
            });
            cands[p as usize] = parent_cands;
            if cands[v as usize].is_empty() {
                return None;
            }
        }
        // Bottom-up: a candidate survives only if every query-tree
        // child has an adjacent surviving candidate.
        for &v in bfs.iter().rev() {
            let children: Vec<NodeId> = q
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&w| parent[w as usize] == v)
                .collect();
            if children.is_empty() {
                continue;
            }
            let child_sets: Vec<(NodeId, u16)> = children
                .iter()
                .map(|&c| (c, q.edge_label(v, c).expect("tree edge")))
                .collect();
            let snapshot = std::mem::take(&mut cands[v as usize]);
            let filtered: Vec<NodeId> = snapshot
                .into_iter()
                .filter(|&u| {
                    child_sets.iter().all(|&(c, el)| {
                        cands[c as usize]
                            .iter()
                            .any(|&cc| cc != u && g.edge_label(u, cc) == Some(el))
                    })
                })
                .collect();
            if filtered.is_empty() {
                return None;
            }
            cands[v as usize] = filtered;
        }
        Some(CandidateSpace { cands, root })
    }

    /// Matching order: root, then greedily extend with the connected
    /// node of the best (class, candidate-count) priority — core before
    /// forest before leaves.
    fn matching_order(q: &Graph, class: &[NodeClass], cs: &CandidateSpace) -> Vec<NodeId> {
        let n = q.node_count();
        let mut order = Vec::with_capacity(n);
        let mut placed = vec![false; n];
        order.push(cs.root);
        placed[cs.root as usize] = true;
        while order.len() < n {
            let mut best: Option<NodeId> = None;
            let mut best_key = (NodeClass::Leaf, usize::MAX, u32::MAX);
            for v in 0..n as NodeId {
                if placed[v as usize] || !q.neighbors(v).iter().any(|&w| placed[w as usize]) {
                    continue;
                }
                let key = (class[v as usize], cs.cands[v as usize].len(), v);
                if key < best_key || best.is_none() {
                    // NodeClass ordering: Core < Forest < Leaf.
                    if best.is_none() || key < best_key {
                        best_key = key;
                        best = Some(v);
                    }
                }
            }
            let v = best.expect("query is connected");
            placed[v as usize] = true;
            order.push(v);
        }
        order
    }
}

impl SubgraphMatcher for CflMatch {
    fn enumerate(
        &self,
        g: &Graph,
        q: &Graph,
        budget: &SearchBudget,
        on_embedding: &mut dyn FnMut(&[NodeId]) -> bool,
    ) -> MatchStats {
        let mut tracker = BudgetTracker::new(budget);
        if q.node_count() == 0 {
            on_embedding(&[]);
            tracker.embedding();
            return MatchStats {
                steps: 0,
                embeddings: tracker.embeddings_found(),
                outcome: tracker.outcome(),
            };
        }
        assert!(q.is_connected(), "CFL-Match requires connected queries");
        let class = classify(q);
        let cs = match Self::build_cpi(g, q, &class, &mut tracker) {
            Some(cs) => cs,
            None => {
                return MatchStats {
                    steps: tracker.steps_used(),
                    embeddings: 0,
                    outcome: tracker.outcome(),
                }
            }
        };
        if tracker.outcome() == BudgetOutcome::Exhausted {
            return MatchStats {
                steps: tracker.steps_used(),
                embeddings: 0,
                outcome: BudgetOutcome::Exhausted,
            };
        }
        let order = Self::matching_order(q, &class, &cs);
        let bt = OrderedBacktracker::new(q, &order);
        let remaining = SearchBudget {
            max_steps: budget.max_steps.saturating_sub(tracker.steps_used()),
            max_embeddings: budget.max_embeddings,
            deadline: budget.deadline,
        };
        let st = bt.run(g, q, &cs.cands[cs.root as usize], &remaining, on_embedding);
        MatchStats {
            steps: tracker.steps_used() + st.steps,
            embeddings: st.embeddings,
            outcome: st.outcome,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ullmann::Ullmann;
    use crate::vf2::Vf2;
    use psi_graph::builder::graph_from;

    #[test]
    fn classify_triangle_with_tail_and_leaf() {
        // 0-1-2 triangle, 2-3-4 path: 0,1,2 core; 3 forest; 4 leaf.
        let q = graph_from(&[0; 5], &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]).unwrap();
        let c = classify(&q);
        assert_eq!(c[0], NodeClass::Core);
        assert_eq!(c[1], NodeClass::Core);
        assert_eq!(c[2], NodeClass::Core);
        assert_eq!(c[3], NodeClass::Forest);
        assert_eq!(c[4], NodeClass::Leaf);
    }

    #[test]
    fn classify_tree_query() {
        // Star: center is core surrogate, arms are leaves.
        let q = graph_from(&[0; 4], &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let c = classify(&q);
        assert_eq!(c[0], NodeClass::Core);
        assert_eq!(c[1], NodeClass::Leaf);
        assert_eq!(c[2], NodeClass::Leaf);
        assert_eq!(c[3], NodeClass::Leaf);
    }

    #[test]
    fn classify_single_node_and_edge() {
        let q1 = graph_from(&[0], &[]).unwrap();
        assert_eq!(classify(&q1), vec![NodeClass::Core]);
        let q2 = graph_from(&[0, 0], &[(0, 1)]).unwrap();
        assert_eq!(classify(&q2), vec![NodeClass::Leaf, NodeClass::Leaf]);
    }

    #[test]
    fn counts_agree_with_oracles() {
        let g = graph_from(
            &[0, 1, 0, 1, 2, 0, 2],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (1, 3), (2, 5), (5, 6), (1, 6)],
        )
        .unwrap();
        for (ql, qe) in [
            (vec![0u16, 1], vec![(0u32, 1u32)]),
            (vec![0, 1, 0], vec![(0, 1), (1, 2)]),
            (vec![0, 1, 1, 0], vec![(0, 1), (1, 2), (2, 3), (0, 3)]),
            (vec![2, 0, 1, 0], vec![(0, 1), (1, 2), (1, 3)]),
        ] {
            let q = graph_from(&ql, &qe).unwrap();
            let (c, _) = CflMatch.count(&g, &q, &SearchBudget::unlimited());
            let (u, _) = Ullmann.count(&g, &q, &SearchBudget::unlimited());
            let (v, _) = Vf2.count(&g, &q, &SearchBudget::unlimited());
            assert_eq!(c, u, "CFL vs Ullmann on {ql:?} {qe:?}");
            assert_eq!(c, v, "CFL vs VF2 on {ql:?} {qe:?}");
        }
    }

    #[test]
    fn cpi_pruning_detects_impossible_queries_without_search() {
        // Query needs a label-2 neighbor of a label-1 node; none exists.
        let g = graph_from(&[0, 1, 2], &[(0, 1), (0, 2)]).unwrap();
        let q = graph_from(&[1, 2], &[(0, 1)]).unwrap();
        let r = CflMatch.find_all(&g, &q, &SearchBudget::unlimited());
        assert!(r.embeddings.is_empty());
        assert!(r.stats.steps < 10, "CPI should fail fast, used {}", r.stats.steps);
    }

    #[test]
    fn leaves_are_matched_last() {
        // Triangle core with two leaves off node 0.
        let q = graph_from(&[0, 0, 0, 1, 1], &[(0, 1), (1, 2), (0, 2), (0, 3), (0, 4)]).unwrap();
        let class = classify(&q);
        let g = q.clone();
        let budget = SearchBudget::unlimited();
        let mut tracker = BudgetTracker::new(&budget);
        let cs = CflMatch::build_cpi(&g, &q, &class, &mut tracker).unwrap();
        let order = CflMatch::matching_order(&q, &class, &cs);
        let pos = |v: u32| order.iter().position(|&x| x == v).unwrap();
        assert!(pos(3) >= 3 && pos(4) >= 3, "leaves last: {order:?}");
    }

    #[test]
    fn budget_respected() {
        let mut edges = Vec::new();
        for u in 0..9u32 {
            for v in (u + 1)..9 {
                edges.push((u, v));
            }
        }
        let g = graph_from(&[0; 9], &edges).unwrap();
        let q = graph_from(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let r = CflMatch.find_all(&g, &q, &SearchBudget::steps(15));
        assert_eq!(r.stats.outcome, BudgetOutcome::Exhausted);
    }

    #[test]
    fn embeddings_verify() {
        let g = graph_from(&[0, 0, 1, 1, 0], &[(0, 2), (2, 1), (1, 3), (3, 0), (2, 3), (0, 4)]).unwrap();
        let q = graph_from(&[0, 1, 1], &[(0, 1), (0, 2), (1, 2)]).unwrap();
        let r = CflMatch.find_all(&g, &q, &SearchBudget::unlimited());
        for e in &r.embeddings {
            assert!(crate::common::verify_embedding(&g, &q, e));
        }
    }
}
