//! TurboIso (Han, Lee, Lee — SIGMOD 2013) and the paper's TurboIso⁺
//! variant.
//!
//! TurboIso's published design has three pillars: (1) a *ranked start
//! vertex* (minimum `freq(label)/degree`), (2) *candidate regions* —
//! for every candidate of the start vertex, a BFS exploration of the
//! query collects per-query-node candidate sets restricted to that
//! region, discarding the region early when any set is empty, and (3) a
//! *region-adaptive matching order* (ascending candidate-set size).
//! This implementation is faithful to those pillars; the NEC
//! (neighborhood-equivalence-class) compression of duplicate query
//! subtrees is not implemented — it only accelerates permutations of
//! equivalent leaves, which does not affect any comparative result we
//! reproduce, and we document it here per DESIGN.md.
//!
//! **TurboIso⁺** is the modification proposed in §1/§5.2 of the
//! SmartPSI paper: evaluate PSI queries by seeding the search at each
//! candidate match of the *pivot* node and stopping that candidate's
//! search as soon as one embedding is found.

use psi_graph::{Graph, NodeId, PivotedQuery};

use crate::budget::{BudgetOutcome, BudgetTracker, SearchBudget};
use crate::common::{
    label_degree_candidates, nlf_satisfied, MatchStats, OrderedBacktracker, SubgraphMatcher,
};
use crate::counting::PsiAnswer;

/// The TurboIso engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct TurboIso {
    /// Start the search from this query node instead of the ranked
    /// choice (used by TurboIso⁺ to force the pivot).
    pub forced_start: Option<NodeId>,
}

impl TurboIso {
    /// Pick the start query vertex by TurboIso's rank
    /// `freq(g, L(v)) / deg(v)` (smaller is more selective).
    pub fn choose_start(g: &Graph, q: &Graph) -> NodeId {
        let mut best = 0 as NodeId;
        let mut best_rank = f64::INFINITY;
        for v in q.node_ids() {
            let deg = q.degree(v).max(1) as f64;
            let rank = g.label_frequency(q.label(v)) as f64 / deg;
            if rank < best_rank {
                best_rank = rank;
                best = v;
            }
        }
        best
    }

    /// Explore the candidate region rooted at data node `root` for query
    /// start `start`: BFS the query from `start`; each query node's
    /// region candidates are data nodes adjacent to some candidate of
    /// its BFS parent, label/degree/NLF-filtered. Returns `None` when
    /// some query node ends with zero candidates (region pruned).
    fn explore_region(
        g: &Graph,
        q: &Graph,
        start: NodeId,
        root: NodeId,
        tracker: &mut BudgetTracker<'_>,
    ) -> Option<Vec<Vec<NodeId>>> {
        let n = q.node_count();
        let mut cands: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        cands[start as usize].push(root);
        let mut visited = vec![false; n];
        visited[start as usize] = true;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for (w, el) in q.neighbors_with_labels(v) {
                if visited[w as usize] {
                    continue;
                }
                visited[w as usize] = true;
                let wl = q.label(w);
                let wdeg = q.degree(w);
                let mut set: Vec<NodeId> = Vec::new();
                for &pc in &cands[v as usize] {
                    for (u, uel) in g.neighbors_with_labels(pc) {
                        if !tracker.step() {
                            return None;
                        }
                        if uel == el
                            && g.label(u) == wl
                            && g.degree(u) >= wdeg
                            && !set.contains(&u)
                            && nlf_satisfied(g, q, w, u)
                        {
                            set.push(u);
                        }
                    }
                }
                if set.is_empty() {
                    return None;
                }
                cands[w as usize] = set;
                queue.push_back(w);
            }
        }
        Some(cands)
    }

    /// Region-adaptive matching order: start first, remaining query
    /// nodes by ascending candidate count, respecting connectivity.
    fn region_order(q: &Graph, start: NodeId, cands: &[Vec<NodeId>]) -> Vec<NodeId> {
        let n = q.node_count();
        let mut order = Vec::with_capacity(n);
        let mut placed = vec![false; n];
        order.push(start);
        placed[start as usize] = true;
        while order.len() < n {
            let mut best: Option<NodeId> = None;
            let mut best_size = usize::MAX;
            for v in 0..n as NodeId {
                if placed[v as usize] {
                    continue;
                }
                if q.neighbors(v).iter().any(|&w| placed[w as usize]) {
                    let size = cands[v as usize].len();
                    if size < best_size {
                        best_size = size;
                        best = Some(v);
                    }
                }
            }
            let v = best.expect("query is connected");
            placed[v as usize] = true;
            order.push(v);
        }
        order
    }
}

impl SubgraphMatcher for TurboIso {
    fn enumerate(
        &self,
        g: &Graph,
        q: &Graph,
        budget: &SearchBudget,
        on_embedding: &mut dyn FnMut(&[NodeId]) -> bool,
    ) -> MatchStats {
        let mut tracker = BudgetTracker::new(budget);
        if q.node_count() == 0 {
            on_embedding(&[]);
            tracker.embedding();
            return MatchStats {
                steps: 0,
                embeddings: tracker.embeddings_found(),
                outcome: tracker.outcome(),
            };
        }
        assert!(
            q.is_connected(),
            "TurboIso requires connected queries (the paper's workloads are)"
        );
        let start = self.forced_start.unwrap_or_else(|| Self::choose_start(g, q));
        let roots: Vec<NodeId> = label_degree_candidates(g, q, start)
            .filter(|&u| nlf_satisfied(g, q, start, u))
            .collect();
        let mut steps = 0u64;
        let mut embeddings = 0u64;
        let mut outcome = BudgetOutcome::Completed;
        let mut stop_all = false;
        for root in roots {
            if stop_all {
                break;
            }
            let region = match Self::explore_region(g, q, start, root, &mut tracker) {
                Some(r) => r,
                None => {
                    if tracker.outcome() == BudgetOutcome::Exhausted {
                        outcome = BudgetOutcome::Exhausted;
                        break;
                    }
                    continue; // region pruned
                }
            };
            let order = Self::region_order(q, start, &region);
            let bt = OrderedBacktracker::new(q, &order);
            // Remaining budget for this region.
            let region_budget = SearchBudget {
                max_steps: budget.max_steps.saturating_sub(tracker.steps_used()),
                max_embeddings: budget.max_embeddings.saturating_sub(embeddings),
                deadline: budget.deadline,
            };
            let mut local_stop = false;
            let st = bt.run(g, q, &[root], &region_budget, &mut |e| {
                let more = on_embedding(e);
                if !more {
                    local_stop = true;
                }
                more
            });
            steps += st.steps;
            embeddings += st.embeddings;
            if st.outcome == BudgetOutcome::Exhausted {
                outcome = BudgetOutcome::Exhausted;
                break;
            }
            if local_stop || embeddings >= budget.max_embeddings {
                stop_all = true;
            }
        }
        MatchStats {
            steps: steps + tracker.steps_used(),
            embeddings,
            outcome,
        }
    }
}

/// TurboIso⁺: PSI evaluation by pivot-seeded, first-match-per-candidate
/// TurboIso search (§5.2 of the SmartPSI paper).
pub fn turboiso_plus_psi(g: &Graph, query: &PivotedQuery, budget: &SearchBudget) -> PsiAnswer {
    let q = query.graph();
    let pivot = query.pivot();
    let engine = TurboIso {
        forced_start: Some(pivot),
    };
    let mut valid = Vec::new();
    let mut steps = 0u64;
    let mut outcome = BudgetOutcome::Completed;
    let candidates: Vec<NodeId> = label_degree_candidates(g, q, pivot)
        .filter(|&u| nlf_satisfied(g, q, pivot, u))
        .collect();
    for root in candidates {
        let remaining = budget.max_steps.saturating_sub(steps);
        if remaining == 0 {
            outcome = BudgetOutcome::Exhausted;
            break;
        }
        // One candidate, one region family, first embedding only.
        let per_candidate = SearchBudget {
            max_steps: remaining,
            max_embeddings: 1,
            deadline: budget.deadline,
        };
        let mut region_engine = engine;
        region_engine.forced_start = Some(pivot);
        let mut found = false;
        let st = run_single_root(&region_engine, g, q, root, &per_candidate, &mut found);
        steps += st.steps;
        if st.outcome == BudgetOutcome::Exhausted {
            outcome = BudgetOutcome::Exhausted;
            break;
        }
        if found {
            valid.push(root);
        }
    }
    valid.sort_unstable();
    PsiAnswer {
        valid,
        steps,
        outcome,
    }
}

/// Run TurboIso's region pipeline for one specific root candidate.
fn run_single_root(
    engine: &TurboIso,
    g: &Graph,
    q: &Graph,
    root: NodeId,
    budget: &SearchBudget,
    found: &mut bool,
) -> MatchStats {
    let start = engine.forced_start.expect("TurboIso⁺ forces the pivot");
    let mut tracker = BudgetTracker::new(budget);
    if g.label(root) != q.label(start) || g.degree(root) < q.degree(start) {
        return MatchStats {
            steps: 0,
            embeddings: 0,
            outcome: BudgetOutcome::Completed,
        };
    }
    let region = match TurboIso::explore_region(g, q, start, root, &mut tracker) {
        Some(r) => r,
        None => {
            return MatchStats {
                steps: tracker.steps_used(),
                embeddings: 0,
                outcome: tracker.outcome(),
            }
        }
    };
    let order = TurboIso::region_order(q, start, &region);
    let bt = OrderedBacktracker::new(q, &order);
    let inner = SearchBudget {
        max_steps: budget.max_steps.saturating_sub(tracker.steps_used()),
        max_embeddings: 1,
        deadline: budget.deadline,
    };
    let st = bt.run(g, q, &[root], &inner, &mut |_| {
        *found = true;
        false
    });
    MatchStats {
        steps: tracker.steps_used() + st.steps,
        embeddings: st.embeddings,
        outcome: if st.outcome == BudgetOutcome::Exhausted || tracker.outcome() == BudgetOutcome::Exhausted {
            BudgetOutcome::Exhausted
        } else {
            BudgetOutcome::Completed
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ullmann::Ullmann;
    use crate::vf2::Vf2;
    use psi_graph::builder::graph_from;

    #[test]
    fn start_vertex_prefers_rare_labels_and_high_degree() {
        // label 0 appears 4x, label 1 once.
        let g = graph_from(&[0, 0, 0, 0, 1], &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let q = graph_from(&[0, 1], &[(0, 1)]).unwrap();
        assert_eq!(TurboIso::choose_start(&g, &q), 1);
    }

    #[test]
    fn counts_agree_with_oracles() {
        let g = graph_from(
            &[0, 1, 0, 1, 2, 0],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (1, 3), (2, 5)],
        )
        .unwrap();
        for (ql, qe) in [
            (vec![0u16, 1], vec![(0u32, 1u32)]),
            (vec![0, 1, 0], vec![(0, 1), (1, 2)]),
            (vec![0, 1, 2], vec![(0, 1), (1, 2)]),
            (vec![1, 0, 1, 2], vec![(0, 1), (1, 2), (2, 3)]),
        ] {
            let q = graph_from(&ql, &qe).unwrap();
            let (t, _) = TurboIso::default().count(&g, &q, &SearchBudget::unlimited());
            let (u, _) = Ullmann.count(&g, &q, &SearchBudget::unlimited());
            let (v, _) = Vf2.count(&g, &q, &SearchBudget::unlimited());
            assert_eq!(t, u, "TurboIso vs Ullmann on {ql:?} {qe:?}");
            assert_eq!(t, v, "TurboIso vs VF2 on {ql:?} {qe:?}");
        }
    }

    #[test]
    fn region_pruning_skips_dead_candidates() {
        // Query: 0(label0)-1(label1); data label-0 node 2 has no
        // label-1 neighbor, so its region dies during exploration.
        let g = graph_from(&[0, 1, 0, 2], &[(0, 1), (2, 3)]).unwrap();
        let q = graph_from(&[0, 1], &[(0, 1)]).unwrap();
        let r = TurboIso::default().find_all(&g, &q, &SearchBudget::unlimited());
        assert_eq!(r.embeddings, vec![vec![0, 1]]);
    }

    #[test]
    fn turboiso_plus_matches_enumeration_psi() {
        let g = graph_from(
            &[0, 1, 2, 2, 1, 0],
            &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (3, 4), (2, 4), (4, 5)],
        )
        .unwrap();
        // Figure 1 of the paper: path query A-B-C pivoted on A;
        // expected bindings of the pivot are u1(=0) and u6(=5).
        let q = PivotedQuery::from_parts(&[0, 1, 2], &[(0, 1), (1, 2)], 0).unwrap();
        let ans = turboiso_plus_psi(&g, &q, &SearchBudget::unlimited());
        assert_eq!(ans.valid, vec![0, 5]);
        assert_eq!(ans.outcome, BudgetOutcome::Completed);
    }

    #[test]
    fn plus_variant_does_less_work_than_full_enumeration() {
        // A blow-up graph: hub with many interchangeable leaves makes
        // full enumeration factorial while TurboIso⁺ stops at one match.
        let mut labels = vec![0u16];
        let mut edges = Vec::new();
        for i in 1..=10u32 {
            labels.push(1);
            edges.push((0, i));
        }
        let g = graph_from(&labels, &edges).unwrap();
        let q = PivotedQuery::from_parts(&[0, 1, 1, 1], &[(0, 1), (0, 2), (0, 3)], 0).unwrap();
        let full = TurboIso::default().find_all(&g, q.graph(), &SearchBudget::unlimited());
        assert_eq!(full.embeddings.len(), 10 * 9 * 8);
        let plus = turboiso_plus_psi(&g, &q, &SearchBudget::unlimited());
        assert_eq!(plus.valid, vec![0]);
        assert!(plus.steps < full.stats.steps / 10);
    }

    #[test]
    fn budget_exhaustion_reported() {
        let mut edges = Vec::new();
        for u in 0..10u32 {
            for v in (u + 1)..10 {
                edges.push((u, v));
            }
        }
        let g = graph_from(&[0; 10], &edges).unwrap();
        let q = graph_from(&[0, 0, 0], &[(0, 1), (1, 2)]).unwrap();
        let r = TurboIso::default().find_all(&g, &q, &SearchBudget::steps(20));
        assert_eq!(r.stats.outcome, BudgetOutcome::Exhausted);

        let pq = PivotedQuery::from_graph(q, 0).unwrap();
        let a = turboiso_plus_psi(&g, &pq, &SearchBudget::steps(5));
        assert_eq!(a.outcome, BudgetOutcome::Exhausted);
    }

    #[test]
    fn single_node_query() {
        let g = graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]).unwrap();
        let q = PivotedQuery::from_parts(&[0], &[], 0).unwrap();
        let ans = turboiso_plus_psi(&g, &q, &SearchBudget::unlimited());
        assert_eq!(ans.valid, vec![0, 2]);
    }
}
