//! # psi-match
//!
//! Subgraph-isomorphism engines: the competitors SmartPSI is evaluated
//! against in §5.2 of the paper, plus shared matching infrastructure.
//!
//! * [`ullmann`] — the classic backtracking algorithm (Ullmann 1976),
//!   with label/degree candidate refinement. Simple, slow; mostly a
//!   readable reference and test oracle.
//! * [`vf2`] — VF2 (Cordella et al.) with its connectivity-aware
//!   feasibility rules; the second oracle.
//! * [`turboiso`] — TurboIso (Han et al., SIGMOD 2013): degree/label
//!   ranked start vertex, per-region exploration, adaptive matching
//!   order. Includes **TurboIso⁺**, the paper's pivot-aware
//!   modification that seeds the search at pivot candidates and stops
//!   per candidate after the first embedding.
//! * [`cfl`] — CFL-Match (Bi et al., SIGMOD 2016): core-forest-leaf
//!   query decomposition with a BFS-tree candidate-space index and
//!   postponed Cartesian products.
//! * [`counting`] — exhaustive embedding counting and enumeration-based
//!   PSI (find all embeddings, project distinct pivot bindings), used
//!   for Table 1 and as ground truth everywhere.
//!
//! All engines implement [`SubgraphMatcher`] and share exact semantics:
//! injective mappings that preserve node labels, edge presence and edge
//! labels (Definition 2.2; standard non-induced subgraph isomorphism).
//!
//! ```
//! use psi_graph::{builder::graph_from, PivotedQuery};
//! use psi_match::{Engine, SubgraphMatcher, SearchBudget};
//!
//! let g = graph_from(&[0, 1, 0, 1], &[(0, 1), (1, 2), (2, 3)]).unwrap();
//! let q = PivotedQuery::from_parts(&[0, 1], &[(0, 1)], 0).unwrap();
//! let embeddings = Engine::Vf2.find_all(&g, q.graph(), &SearchBudget::unlimited());
//! assert_eq!(embeddings.embeddings.len(), 3); // (0,1), (2,1), (2,3)
//! ```

#![warn(missing_docs)]

pub mod budget;
pub mod cfl;
pub mod common;
pub mod counting;
pub mod graphql;
pub mod turboiso;
pub mod ullmann;
pub mod vf2;

pub use budget::{BudgetOutcome, SearchBudget};
pub use common::{EnumerationResult, Embedding, MatchStats, PanicIsolated, SubgraphMatcher};
pub use counting::{count_embeddings, psi_by_enumeration, psi_by_enumeration_recorded};

use psi_graph::Graph;

/// Engine selector covering every implemented matcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// Ullmann-style backtracking.
    Ullmann,
    /// VF2.
    Vf2,
    /// GraphQL.
    GraphQl,
    /// TurboIso.
    TurboIso,
    /// CFL-Match.
    CflMatch,
}

impl Engine {
    /// All engines, for oracle tests.
    pub const ALL: [Engine; 5] = [
        Engine::Ullmann,
        Engine::Vf2,
        Engine::GraphQl,
        Engine::TurboIso,
        Engine::CflMatch,
    ];

    /// Human-readable name as used in the paper's plots.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Ullmann => "Ullmann",
            Engine::Vf2 => "VF2",
            Engine::GraphQl => "GraphQL",
            Engine::TurboIso => "TurboIso",
            Engine::CflMatch => "CFL-Match",
        }
    }
}

impl SubgraphMatcher for Engine {
    fn find_all(&self, g: &Graph, q: &Graph, budget: &SearchBudget) -> EnumerationResult {
        match self {
            Engine::Ullmann => ullmann::Ullmann.find_all(g, q, budget),
            Engine::Vf2 => vf2::Vf2.find_all(g, q, budget),
            Engine::GraphQl => graphql::GraphQl::default().find_all(g, q, budget),
            Engine::TurboIso => turboiso::TurboIso::default().find_all(g, q, budget),
            Engine::CflMatch => cfl::CflMatch.find_all(g, q, budget),
        }
    }
}
