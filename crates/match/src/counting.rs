//! Embedding counting and enumeration-based PSI — the "existing
//! applications" strategy the paper argues against (§1, Table 1): run
//! full subgraph isomorphism, then project the distinct bindings of the
//! pivot node.

use psi_graph::{Graph, NodeId, PivotedQuery};

use crate::budget::{BudgetOutcome, SearchBudget};
use crate::common::{MatchStats, SubgraphMatcher};
use crate::turboiso::TurboIso;

/// The answer to a PSI query: all distinct data nodes that bind the
/// pivot in at least one embedding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PsiAnswer {
    /// Sorted, distinct valid nodes.
    pub valid: Vec<NodeId>,
    /// Search steps spent.
    pub steps: u64,
    /// Whether the evaluation completed (`valid` is exact) or was
    /// censored by the budget (`valid` is a lower bound).
    pub outcome: BudgetOutcome,
}

impl PsiAnswer {
    /// Number of valid nodes.
    pub fn count(&self) -> usize {
        self.valid.len()
    }

    /// Whether `node` is in the answer.
    pub fn contains(&self, node: NodeId) -> bool {
        self.valid.binary_search(&node).is_ok()
    }
}

/// Count all embeddings of `q` in `g` with the default engine
/// (TurboIso), within `budget`.
pub fn count_embeddings(g: &Graph, q: &Graph, budget: &SearchBudget) -> (u64, MatchStats) {
    TurboIso::default().count(g, q, budget)
}

/// Evaluate a PSI query the way subgraph-isomorphism-based applications
/// do: enumerate *all* embeddings with `engine` and collect the
/// distinct pivot bindings. This is the expensive strategy Table 1
/// quantifies; [`crate::turboiso::turboiso_plus_psi`] and the psi-core
/// evaluators exist to beat it.
pub fn psi_by_enumeration<M: SubgraphMatcher>(
    engine: &M,
    g: &Graph,
    query: &PivotedQuery,
    budget: &SearchBudget,
) -> PsiAnswer {
    let pivot = query.pivot() as usize;
    let mut seen = vec![false; g.node_count()];
    let mut valid = Vec::new();
    let stats = engine.enumerate(g, query.graph(), budget, &mut |e| {
        let u = e[pivot];
        if !seen[u as usize] {
            seen[u as usize] = true;
            valid.push(u);
        }
        true
    });
    valid.sort_unstable();
    PsiAnswer {
        valid,
        steps: stats.steps,
        outcome: stats.outcome,
    }
}

/// [`psi_by_enumeration`] with observability: the whole enumeration
/// runs inside a [`psi_obs::Phase::ExactFallback`] span and its step
/// count feeds [`psi_obs::Counter::Steps`].
pub fn psi_by_enumeration_recorded<M: SubgraphMatcher>(
    engine: &M,
    g: &Graph,
    query: &PivotedQuery,
    budget: &SearchBudget,
    rec: &dyn psi_obs::Recorder,
) -> PsiAnswer {
    let answer = psi_obs::timed(rec, psi_obs::Phase::ExactFallback, || {
        psi_by_enumeration(engine, g, query, budget)
    });
    rec.add(psi_obs::Counter::Steps, answer.steps);
    answer
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ullmann::Ullmann;
    use crate::vf2::Vf2;
    use psi_graph::builder::graph_from;

    /// The running example of the paper (Figure 1): the path query
    /// S(v1(A) - v2(B) - v3(C)) has few embeddings in G but only 2
    /// distinct pivot bindings (u1, u6).
    ///
    /// Note: the paper lists 5 embeddings, omitting (u6, u5, u4) — but
    /// that omission is inconsistent with its own list, since it
    /// accepts both (u1, u5, u4) (edge u5-u4 exists) and (u6, u5, u3)
    /// (edge u6-u5 exists), which together force (u6, u5, u4) to be an
    /// embedding too. The correct count on the Figure 1 graph is 6;
    /// the PSI answer {u1, u6} is unaffected.
    fn figure1() -> (Graph, PivotedQuery) {
        let g = graph_from(
            &[0, 1, 2, 2, 1, 0],
            &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (3, 4), (2, 4), (4, 5)],
        )
        .unwrap();
        let q = PivotedQuery::from_parts(&[0, 1, 2], &[(0, 1), (1, 2)], 0).unwrap();
        (g, q)
    }

    #[test]
    fn figure1_embedding_count() {
        let (g, q) = figure1();
        let (n, _) = count_embeddings(&g, q.graph(), &SearchBudget::unlimited());
        assert_eq!(n, 6); // see fixture doc: the paper's "5" omits one
    }

    #[test]
    fn figure1_psi_answer_is_u1_u6() {
        let (g, q) = figure1();
        for ans in [
            psi_by_enumeration(&Ullmann, &g, &q, &SearchBudget::unlimited()),
            psi_by_enumeration(&Vf2, &g, &q, &SearchBudget::unlimited()),
            psi_by_enumeration(&TurboIso::default(), &g, &q, &SearchBudget::unlimited()),
            psi_by_enumeration(&crate::cfl::CflMatch, &g, &q, &SearchBudget::unlimited()),
        ] {
            assert_eq!(ans.valid, vec![0, 5]);
            assert_eq!(ans.count(), 2);
            assert!(ans.contains(0));
            assert!(!ans.contains(3));
            assert_eq!(ans.outcome, BudgetOutcome::Completed);
        }
    }

    #[test]
    fn psi_projects_duplicates_once() {
        // Hub with 3 leaves: many embeddings, one pivot binding.
        let g = graph_from(&[0, 1, 1, 1], &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let q = PivotedQuery::from_parts(&[0, 1, 1], &[(0, 1), (0, 2)], 0).unwrap();
        let (n, _) = count_embeddings(&g, q.graph(), &SearchBudget::unlimited());
        assert_eq!(n, 6);
        let ans = psi_by_enumeration(&TurboIso::default(), &g, &q, &SearchBudget::unlimited());
        assert_eq!(ans.valid, vec![0]);
    }

    #[test]
    fn censored_answer_reports_exhaustion() {
        let mut edges = Vec::new();
        for u in 0..12u32 {
            for v in (u + 1)..12 {
                edges.push((u, v));
            }
        }
        let g = graph_from(&[0; 12], &edges).unwrap();
        let q = PivotedQuery::from_parts(&[0, 0, 0], &[(0, 1), (1, 2)], 0).unwrap();
        let ans = psi_by_enumeration(&Vf2, &g, &q, &SearchBudget::steps(8));
        assert_eq!(ans.outcome, BudgetOutcome::Exhausted);
    }
}
