//! Search budgets: bounded enumeration with explicit exhaustion
//! reporting.
//!
//! The paper caps every task at 24 hours; at laptop scale we cap
//! searches by *steps* (candidate-extension attempts — deterministic
//! and cheap to count) and optionally by wall-clock deadline, and we
//! always report whether a search finished or was censored.

use std::time::{Duration, Instant};

/// Budget for one search: step limit, optional embedding limit and
/// optional wall-clock deadline.
#[derive(Debug, Clone)]
pub struct SearchBudget {
    /// Maximum candidate-extension steps (`u64::MAX` = unlimited).
    pub max_steps: u64,
    /// Stop after this many embeddings have been produced
    /// (`u64::MAX` = unlimited).
    pub max_embeddings: u64,
    /// Optional wall-clock deadline.
    pub deadline: Option<Instant>,
}

impl SearchBudget {
    /// No limits.
    pub fn unlimited() -> Self {
        Self {
            max_steps: u64::MAX,
            max_embeddings: u64::MAX,
            deadline: None,
        }
    }

    /// Step-limited budget.
    pub fn steps(max_steps: u64) -> Self {
        Self {
            max_steps,
            ..Self::unlimited()
        }
    }

    /// Embedding-limited budget (e.g. "stop after first match").
    pub fn embeddings(max_embeddings: u64) -> Self {
        Self {
            max_embeddings,
            ..Self::unlimited()
        }
    }

    /// Budget expiring `timeout` from now.
    pub fn timeout(timeout: Duration) -> Self {
        Self {
            deadline: Some(Instant::now() + timeout),
            ..Self::unlimited()
        }
    }

    /// Set a step limit on an existing budget.
    pub fn with_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Set an embedding limit on an existing budget.
    pub fn with_embeddings(mut self, max_embeddings: u64) -> Self {
        self.max_embeddings = max_embeddings;
        self
    }
}

impl Default for SearchBudget {
    fn default() -> Self {
        Self::unlimited()
    }
}

/// How a bounded search ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetOutcome {
    /// The search space was exhausted (or the embedding limit hit):
    /// results are complete with respect to the request.
    Completed,
    /// The step limit or deadline fired: results are a lower bound.
    Exhausted,
    /// The engine panicked mid-search and the panic was contained by
    /// [`crate::PanicIsolated`]: results cover only the embeddings
    /// delivered before the panic.
    Panicked,
}

/// Live budget tracker threaded through a search.
#[derive(Debug)]
pub struct BudgetTracker<'a> {
    budget: &'a SearchBudget,
    steps: u64,
    embeddings: u64,
    exhausted: bool,
}

impl<'a> BudgetTracker<'a> {
    /// Start tracking against `budget`.
    pub fn new(budget: &'a SearchBudget) -> Self {
        Self {
            budget,
            steps: 0,
            embeddings: 0,
            exhausted: false,
        }
    }

    /// Record one candidate-extension step; returns `false` when the
    /// budget is exhausted and the search must unwind.
    #[inline]
    pub fn step(&mut self) -> bool {
        self.steps += 1;
        if self.steps >= self.budget.max_steps {
            self.exhausted = true;
            return false;
        }
        // Deadline checks are comparatively expensive; amortize.
        if self.steps.is_multiple_of(1024) {
            if let Some(d) = self.budget.deadline {
                if Instant::now() >= d {
                    self.exhausted = true;
                    return false;
                }
            }
        }
        true
    }

    /// Record one produced embedding; returns `false` when the
    /// embedding limit has been reached (the search should stop, but is
    /// still *complete* w.r.t. the request).
    #[inline]
    pub fn embedding(&mut self) -> bool {
        self.embeddings += 1;
        self.embeddings < self.budget.max_embeddings
    }

    /// Steps consumed so far.
    pub fn steps_used(&self) -> u64 {
        self.steps
    }

    /// Embeddings produced so far.
    pub fn embeddings_found(&self) -> u64 {
        self.embeddings
    }

    /// Final outcome.
    pub fn outcome(&self) -> BudgetOutcome {
        if self.exhausted {
            BudgetOutcome::Exhausted
        } else {
            BudgetOutcome::Completed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_stops() {
        let b = SearchBudget::unlimited();
        let mut t = BudgetTracker::new(&b);
        for _ in 0..10_000 {
            assert!(t.step());
            assert!(t.embedding());
        }
        assert_eq!(t.outcome(), BudgetOutcome::Completed);
    }

    #[test]
    fn step_limit_fires() {
        let b = SearchBudget::steps(5);
        let mut t = BudgetTracker::new(&b);
        assert!(t.step());
        assert!(t.step());
        assert!(t.step());
        assert!(t.step());
        assert!(!t.step());
        assert_eq!(t.outcome(), BudgetOutcome::Exhausted);
        assert_eq!(t.steps_used(), 5);
    }

    #[test]
    fn embedding_limit_completes() {
        let b = SearchBudget::embeddings(2);
        let mut t = BudgetTracker::new(&b);
        assert!(t.embedding());
        assert!(!t.embedding());
        // Hitting the embedding limit is not exhaustion.
        assert_eq!(t.outcome(), BudgetOutcome::Completed);
        assert_eq!(t.embeddings_found(), 2);
    }

    #[test]
    fn expired_deadline_fires_on_checkpoint() {
        let b = SearchBudget {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..SearchBudget::unlimited()
        };
        let mut t = BudgetTracker::new(&b);
        let mut stopped = false;
        for _ in 0..2048 {
            if !t.step() {
                stopped = true;
                break;
            }
        }
        assert!(stopped, "deadline must fire within one checkpoint window");
        assert_eq!(t.outcome(), BudgetOutcome::Exhausted);
    }

    #[test]
    fn builder_combinators() {
        let b = SearchBudget::unlimited().with_steps(7).with_embeddings(3);
        assert_eq!(b.max_steps, 7);
        assert_eq!(b.max_embeddings, 3);
    }
}
