//! GraphQL-style matcher (He & Singh, SIGMOD 2008), the engine the
//! paper's related-work section singles out as "one of the best
//! subgraph isomorphism techniques" before TurboIso/CFL-Match.
//!
//! The published ideas implemented here:
//!
//! * **Profile pruning** (local): every node carries a *profile* — the
//!   sorted multiset of labels in its radius-1 neighborhood (itself
//!   included). A data node can match a query node only if the query
//!   profile is a sub-multiset of the data profile.
//! * **Pseudo-isomorphism refinement** (global): iterate a
//!   semi-perfect-matching check — candidate `u` of query node `v`
//!   survives only if every query neighbor of `v` has at least one
//!   candidate among `u`'s neighbors; repeated for a fixed number of
//!   rounds (GraphQL uses a small constant).
//! * **Cost-ordered search**: query nodes are matched in ascending
//!   candidate-set-size order (connected), the greedy form of
//!   GraphQL's dynamic-programming order optimizer.

use psi_graph::{Graph, LabelId, NodeId};

use crate::budget::{BudgetTracker, SearchBudget};
use crate::common::{label_degree_candidates, MatchStats, OrderedBacktracker, SubgraphMatcher};

/// The GraphQL engine.
#[derive(Debug, Clone, Copy)]
pub struct GraphQl {
    /// Refinement rounds (the paper's `l`; 2 is customary).
    pub refinement_rounds: usize,
}

impl Default for GraphQl {
    fn default() -> Self {
        Self {
            refinement_rounds: 2,
        }
    }
}

/// Sorted radius-1 label profile of node `n` (including itself).
fn profile(g: &Graph, n: NodeId) -> Vec<LabelId> {
    let mut p = Vec::with_capacity(g.degree(n) + 1);
    p.push(g.label(n));
    p.extend(g.neighbors(n).iter().map(|&m| g.label(m)));
    p.sort_unstable();
    p
}

/// Is `needle` a sub-multiset of `haystack`? Both sorted.
fn submultiset(needle: &[LabelId], haystack: &[LabelId]) -> bool {
    let mut i = 0;
    for &h in haystack {
        if i == needle.len() {
            return true;
        }
        if needle[i] == h {
            i += 1;
        } else if needle[i] < h {
            return false;
        }
    }
    i == needle.len()
}

impl GraphQl {
    fn candidates(&self, g: &Graph, q: &Graph) -> Option<Vec<Vec<NodeId>>> {
        // Local pruning: label + degree + profile containment.
        let qprofiles: Vec<Vec<LabelId>> = q.node_ids().map(|v| profile(q, v)).collect();
        let mut cands: Vec<Vec<NodeId>> = Vec::with_capacity(q.node_count());
        for v in q.node_ids() {
            let set: Vec<NodeId> = label_degree_candidates(g, q, v)
                .filter(|&u| submultiset(&qprofiles[v as usize], &profile(g, u)))
                .collect();
            if set.is_empty() {
                return None;
            }
            cands.push(set);
        }
        // Global refinement.
        for _ in 0..self.refinement_rounds {
            let mut changed = false;
            for v in q.node_ids() {
                let v_us = v as usize;
                let mut i = 0;
                while i < cands[v_us].len() {
                    let u = cands[v_us][i];
                    let supported = q.neighbors(v).iter().all(|&w| {
                        cands[w as usize]
                            .iter()
                            .any(|&c| c != u && g.has_edge(u, c))
                    });
                    if supported {
                        i += 1;
                    } else {
                        cands[v_us].swap_remove(i);
                        changed = true;
                    }
                }
                if cands[v_us].is_empty() {
                    return None;
                }
            }
            if !changed {
                break;
            }
        }
        Some(cands)
    }

    /// Connected matching order by ascending candidate count.
    fn order(q: &Graph, cands: &[Vec<NodeId>]) -> Vec<NodeId> {
        let n = q.node_count();
        let mut order = Vec::with_capacity(n);
        let mut placed = vec![false; n];
        // Start at the globally smallest candidate set.
        let first = (0..n as NodeId).min_by_key(|&v| cands[v as usize].len()).unwrap();
        order.push(first);
        placed[first as usize] = true;
        while order.len() < n {
            let next = (0..n as NodeId)
                .filter(|&v| {
                    !placed[v as usize] && q.neighbors(v).iter().any(|&w| placed[w as usize])
                })
                .min_by_key(|&v| cands[v as usize].len())
                .expect("query is connected");
            placed[next as usize] = true;
            order.push(next);
        }
        order
    }
}

impl SubgraphMatcher for GraphQl {
    fn enumerate(
        &self,
        g: &Graph,
        q: &Graph,
        budget: &SearchBudget,
        on_embedding: &mut dyn FnMut(&[NodeId]) -> bool,
    ) -> MatchStats {
        let mut tracker = BudgetTracker::new(budget);
        if q.node_count() == 0 {
            on_embedding(&[]);
            tracker.embedding();
            return MatchStats {
                steps: 0,
                embeddings: tracker.embeddings_found(),
                outcome: tracker.outcome(),
            };
        }
        assert!(q.is_connected(), "GraphQL engine requires connected queries");
        let Some(cands) = self.candidates(g, q) else {
            return MatchStats {
                steps: tracker.steps_used(),
                embeddings: 0,
                outcome: tracker.outcome(),
            };
        };
        let order = Self::order(q, &cands);
        let bt = OrderedBacktracker::new(q, &order);
        bt.run(g, q, &cands[order[0] as usize], budget, on_embedding)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ullmann::Ullmann;
    use crate::vf2::Vf2;
    use psi_graph::builder::graph_from;

    #[test]
    fn submultiset_logic() {
        assert!(submultiset(&[1, 2], &[0, 1, 2, 3]));
        assert!(submultiset(&[1, 1], &[1, 1, 2]));
        assert!(!submultiset(&[1, 1], &[1, 2]));
        assert!(submultiset(&[], &[5]));
        assert!(!submultiset(&[5], &[]));
    }

    #[test]
    fn profile_pruning_rejects_poor_neighborhoods() {
        // Query node needs two label-1 neighbors; data node 3 has one.
        let g = graph_from(&[0, 1, 1, 0, 1], &[(0, 1), (0, 2), (3, 4)]).unwrap();
        let q = graph_from(&[0, 1, 1], &[(0, 1), (0, 2)]).unwrap();
        let engine = GraphQl::default();
        let cands = engine.candidates(&g, &q).unwrap();
        assert_eq!(cands[0], vec![0]);
    }

    #[test]
    fn counts_agree_with_oracles() {
        let g = graph_from(
            &[0, 1, 0, 1, 2, 0],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (1, 3), (2, 5)],
        )
        .unwrap();
        for (ql, qe) in [
            (vec![0u16, 1], vec![(0u32, 1u32)]),
            (vec![0, 1, 0], vec![(0, 1), (1, 2)]),
            (vec![1, 0, 1, 2], vec![(0, 1), (1, 2), (2, 3)]),
            (vec![0, 1, 2, 0], vec![(0, 1), (1, 2), (2, 3), (0, 3)]),
        ] {
            let q = graph_from(&ql, &qe).unwrap();
            let (a, _) = GraphQl::default().count(&g, &q, &SearchBudget::unlimited());
            let (b, _) = Ullmann.count(&g, &q, &SearchBudget::unlimited());
            let (c, _) = Vf2.count(&g, &q, &SearchBudget::unlimited());
            assert_eq!(a, b, "GraphQL vs Ullmann on {ql:?} {qe:?}");
            assert_eq!(a, c, "GraphQL vs VF2 on {ql:?} {qe:?}");
        }
    }

    #[test]
    fn refinement_can_prove_emptiness_without_search() {
        // Two label-0 nodes exist but neither has both required
        // neighbor kinds adjacent simultaneously after refinement.
        let g = graph_from(&[0, 1, 0, 2], &[(0, 1), (2, 3)]).unwrap();
        let q = graph_from(&[0, 1, 2], &[(0, 1), (0, 2)]).unwrap();
        let r = GraphQl::default().find_all(&g, &q, &SearchBudget::unlimited());
        assert!(r.embeddings.is_empty());
        assert_eq!(r.stats.steps, 0, "pruned before any search step");
    }

    #[test]
    fn budget_respected() {
        let mut edges = Vec::new();
        for u in 0..10u32 {
            for v in (u + 1)..10 {
                edges.push((u, v));
            }
        }
        let g = graph_from(&[0; 10], &edges).unwrap();
        let q = graph_from(&[0, 0, 0], &[(0, 1), (1, 2)]).unwrap();
        let r = GraphQl::default().find_all(&g, &q, &SearchBudget::steps(12));
        assert_eq!(r.stats.outcome, crate::BudgetOutcome::Exhausted);
    }

    #[test]
    fn zero_refinement_rounds_still_correct() {
        let engine = GraphQl {
            refinement_rounds: 0,
        };
        let g = graph_from(&[0, 1, 0, 1], &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let q = graph_from(&[0, 1], &[(0, 1)]).unwrap();
        let (n, _) = engine.count(&g, &q, &SearchBudget::unlimited());
        assert_eq!(n, 3);
    }
}
