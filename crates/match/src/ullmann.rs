//! Ullmann's algorithm (JACM 1976): backtracking over per-query-node
//! candidate sets with iterated arc-consistency refinement.
//!
//! The historical baseline. Unlike the connected enumerators, it keeps
//! an explicit candidate list per query node and repeatedly removes
//! candidates that have no compatible neighbor candidate for some query
//! neighbor (Ullmann's "refinement procedure"), then backtracks in
//! plain query-node order. It also handles disconnected queries, which
//! the connected engines reject by construction.

use psi_graph::{Graph, NodeId};

use crate::budget::{BudgetTracker, SearchBudget};
use crate::common::{label_degree_candidates, MatchStats, SubgraphMatcher};

/// The Ullmann engine (stateless).
#[derive(Debug, Clone, Copy, Default)]
pub struct Ullmann;

impl Ullmann {
    /// Build initial candidate sets with the label/degree filter.
    fn initial_candidates(g: &Graph, q: &Graph) -> Vec<Vec<NodeId>> {
        q.node_ids()
            .map(|qv| label_degree_candidates(g, q, qv).collect())
            .collect()
    }

    /// Ullmann refinement: delete candidate `c` of query node `v` when
    /// some neighbor `w` of `v` has no candidate adjacent to `c` (with
    /// the right edge label). Iterate to fixpoint.
    fn refine(g: &Graph, q: &Graph, cands: &mut [Vec<NodeId>]) {
        let mut changed = true;
        while changed {
            changed = false;
            for v in q.node_ids() {
                let v_us = v as usize;
                let mut i = 0;
                while i < cands[v_us].len() {
                    let c = cands[v_us][i];
                    let mut supported = true;
                    for (w, el) in q.neighbors_with_labels(v) {
                        let has_support = cands[w as usize].iter().any(|&cw| {
                            cw != c && g.edge_label(c, cw) == Some(el)
                        });
                        if !has_support {
                            supported = false;
                            break;
                        }
                    }
                    if supported {
                        i += 1;
                    } else {
                        cands[v_us].swap_remove(i);
                        changed = true;
                    }
                }
            }
        }
    }
}

impl SubgraphMatcher for Ullmann {
    fn enumerate(
        &self,
        g: &Graph,
        q: &Graph,
        budget: &SearchBudget,
        on_embedding: &mut dyn FnMut(&[NodeId]) -> bool,
    ) -> MatchStats {
        let n = q.node_count();
        let mut tracker = BudgetTracker::new(budget);
        if n == 0 {
            // The empty query has exactly one (empty) embedding.
            on_embedding(&[]);
            tracker.embedding();
            return MatchStats {
                steps: 0,
                embeddings: tracker.embeddings_found(),
                outcome: tracker.outcome(),
            };
        }
        let mut cands = Self::initial_candidates(g, q);
        Self::refine(g, q, &mut cands);
        if cands.iter().any(|c| c.is_empty()) {
            return MatchStats {
                steps: tracker.steps_used(),
                embeddings: 0,
                outcome: tracker.outcome(),
            };
        }
        let mut mapping = vec![u32::MAX; n];
        let mut used = vec![false; g.node_count()];
        backtrack(g, q, &cands, 0, &mut mapping, &mut used, &mut tracker, on_embedding);
        MatchStats {
            steps: tracker.steps_used(),
            embeddings: tracker.embeddings_found(),
            outcome: tracker.outcome(),
        }
    }
}

/// Plain depth-first assignment in query-node order; returns `false` to
/// abort the whole search.
#[allow(clippy::too_many_arguments)]
fn backtrack(
    g: &Graph,
    q: &Graph,
    cands: &[Vec<NodeId>],
    depth: usize,
    mapping: &mut [NodeId],
    used: &mut [bool],
    tracker: &mut BudgetTracker<'_>,
    on_embedding: &mut dyn FnMut(&[NodeId]) -> bool,
) -> bool {
    if depth == q.node_count() {
        let more = on_embedding(mapping);
        return tracker.embedding() && more;
    }
    let qv = depth as NodeId;
    for &c in &cands[depth] {
        if !tracker.step() {
            return false;
        }
        if used[c as usize] {
            continue;
        }
        // All query edges to already-assigned nodes must exist in g
        // with matching labels.
        let mut ok = true;
        for (qn, qel) in q.neighbors_with_labels(qv) {
            if (qn as usize) < depth {
                match g.edge_label(c, mapping[qn as usize]) {
                    Some(gel) if gel == qel => {}
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
        }
        if !ok {
            continue;
        }
        mapping[depth] = c;
        used[c as usize] = true;
        let keep = backtrack(g, q, cands, depth + 1, mapping, used, tracker, on_embedding);
        used[c as usize] = false;
        mapping[depth] = u32::MAX;
        if !keep {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::verify_embedding;
    use psi_graph::builder::graph_from;

    #[test]
    fn finds_single_edge_matches() {
        let g = graph_from(&[0, 1, 0, 1], &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let q = graph_from(&[0, 1], &[(0, 1)]).unwrap();
        let r = Ullmann.find_all(&g, &q, &SearchBudget::unlimited());
        // Edges with (label0, label1) endpoints: (0,1), (2,1), (2,3).
        assert_eq!(r.embeddings.len(), 3);
        for e in &r.embeddings {
            assert!(verify_embedding(&g, &q, e));
        }
    }

    #[test]
    fn triangle_automorphisms() {
        let g = graph_from(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let (n, _) = Ullmann.count(&g, &g, &SearchBudget::unlimited());
        assert_eq!(n, 6);
    }

    #[test]
    fn no_match_when_label_missing() {
        let g = graph_from(&[0, 0], &[(0, 1)]).unwrap();
        let q = graph_from(&[0, 9], &[(0, 1)]).unwrap();
        let r = Ullmann.find_all(&g, &q, &SearchBudget::unlimited());
        assert!(r.embeddings.is_empty());
    }

    #[test]
    fn refinement_prunes_unsupported_candidates() {
        // Path 0-1-2 labels a-b-a; query edge b-b has no match, and
        // refinement alone must empty the candidate sets.
        let g = graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]).unwrap();
        let q = graph_from(&[1, 1], &[(0, 1)]).unwrap();
        let mut cands = Ullmann::initial_candidates(&g, &q);
        assert_eq!(cands[0], vec![1]);
        Ullmann::refine(&g, &q, &mut cands);
        assert!(cands[0].is_empty());
    }

    #[test]
    fn handles_disconnected_queries() {
        // Query: two isolated nodes labeled 0 and 1.
        let g = graph_from(&[0, 1, 0], &[(0, 1)]).unwrap();
        let q = graph_from(&[0, 1], &[]).unwrap();
        let r = Ullmann.find_all(&g, &q, &SearchBudget::unlimited());
        // label-0 nodes: {0, 2}; label-1 nodes: {1} → 2 embeddings.
        assert_eq!(r.embeddings.len(), 2);
    }

    #[test]
    fn empty_query_has_one_embedding() {
        let g = graph_from(&[0], &[]).unwrap();
        let q = psi_graph::GraphBuilder::new().build().unwrap();
        let (n, _) = Ullmann.count(&g, &q, &SearchBudget::unlimited());
        assert_eq!(n, 1);
    }

    #[test]
    fn find_first_stops_early() {
        let g = graph_from(&[0; 8], &(0..7u32).map(|i| (i, i + 1)).collect::<Vec<_>>()).unwrap();
        let q = graph_from(&[0, 0], &[(0, 1)]).unwrap();
        let (first, stats) = Ullmann.find_first(&g, &q, &SearchBudget::unlimited());
        assert!(first.is_some());
        assert_eq!(stats.embeddings, 1);
    }

    #[test]
    fn respects_edge_labels() {
        let mut b = psi_graph::GraphBuilder::new();
        let n0 = b.add_node(0);
        let n1 = b.add_node(0);
        let n2 = b.add_node(0);
        b.add_labeled_edge(n0, n1, 1);
        b.add_labeled_edge(n1, n2, 2);
        let g = b.build().unwrap();
        let mut qb = psi_graph::GraphBuilder::new();
        let a = qb.add_node(0);
        let c = qb.add_node(0);
        qb.add_labeled_edge(a, c, 2);
        let q = qb.build().unwrap();
        let r = Ullmann.find_all(&g, &q, &SearchBudget::unlimited());
        assert_eq!(r.embeddings.len(), 2); // (1,2) and (2,1)
    }
}
