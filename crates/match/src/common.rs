//! Shared matching infrastructure: the matcher trait, embeddings,
//! statistics, and the generic ordered backtracking enumerator.

use psi_graph::{Graph, LabelId, NodeId};

use crate::budget::{BudgetOutcome, BudgetTracker, SearchBudget};

/// An embedding maps query node `i` to data node `embedding[i]`.
pub type Embedding = Vec<NodeId>;

/// Statistics of one search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchStats {
    /// Candidate-extension steps performed.
    pub steps: u64,
    /// Embeddings reported to the callback.
    pub embeddings: u64,
    /// Whether the search completed or hit its budget.
    pub outcome: BudgetOutcome,
}

/// Result of [`SubgraphMatcher::find_all`].
#[derive(Debug, Clone)]
pub struct EnumerationResult {
    /// All embeddings found (complete iff `stats.outcome` is
    /// [`BudgetOutcome::Completed`]).
    pub embeddings: Vec<Embedding>,
    /// Search statistics.
    pub stats: MatchStats,
}

/// A subgraph-isomorphism engine.
///
/// Semantics for all implementors (Definition 2.2, non-induced):
/// an embedding `M` is injective, `L(v) = L(M(v))` for query nodes,
/// and every query edge `(u, v)` with label `l` maps to a data edge
/// `(M(u), M(v))` with label `l`.
pub trait SubgraphMatcher {
    /// Enumerate embeddings, invoking `on_embedding` for each; the
    /// callback returns `false` to stop the search early.
    ///
    /// The default routes through [`SubgraphMatcher::find_all`];
    /// engines override it to stream without materializing.
    fn enumerate(
        &self,
        g: &Graph,
        q: &Graph,
        budget: &SearchBudget,
        on_embedding: &mut dyn FnMut(&[NodeId]) -> bool,
    ) -> MatchStats {
        let result = self.find_all(g, q, budget);
        for e in &result.embeddings {
            if !on_embedding(e) {
                break;
            }
        }
        result.stats
    }

    /// Collect all embeddings within `budget`.
    fn find_all(&self, g: &Graph, q: &Graph, budget: &SearchBudget) -> EnumerationResult {
        let mut embeddings = Vec::new();
        let stats = self.enumerate(g, q, budget, &mut |e| {
            embeddings.push(e.to_vec());
            true
        });
        EnumerationResult { embeddings, stats }
    }

    /// Find one embedding, if any, within `budget`.
    fn find_first(&self, g: &Graph, q: &Graph, budget: &SearchBudget) -> (Option<Embedding>, MatchStats) {
        let limited = budget.clone().with_embeddings(1);
        let mut found = None;
        let stats = self.enumerate(g, q, &limited, &mut |e| {
            found = Some(e.to_vec());
            false
        });
        (found, stats)
    }

    /// Count embeddings without materializing them.
    fn count(&self, g: &Graph, q: &Graph, budget: &SearchBudget) -> (u64, MatchStats) {
        let mut n = 0u64;
        let stats = self.enumerate(g, q, budget, &mut |_| {
            n += 1;
            true
        });
        (n, stats)
    }
}

/// Wrapper that contains panics thrown by an inner engine.
///
/// A panicking engine normally tears down the whole query (or, under a
/// thread pool, kills its worker). Wrapped in `PanicIsolated`, the
/// panic is caught at the `enumerate` boundary and surfaced as
/// [`BudgetOutcome::Panicked`] with the embeddings delivered before
/// the panic preserved; the payload text is retrievable once via
/// [`PanicIsolated::take_panic`]. The default `find_all` /
/// `find_first` / `count` methods all route through `enumerate`, so
/// every entry point is covered.
pub struct PanicIsolated<M> {
    inner: M,
    last_panic: std::sync::Mutex<Option<String>>,
}

impl<M> PanicIsolated<M> {
    /// Wrap `inner`.
    pub fn new(inner: M) -> Self {
        Self {
            inner,
            last_panic: std::sync::Mutex::new(None),
        }
    }

    /// The payload text of the most recent contained panic, if any.
    /// Clears the stored value.
    pub fn take_panic(&self) -> Option<String> {
        match self.last_panic.lock() {
            Ok(mut slot) => slot.take(),
            Err(poisoned) => poisoned.into_inner().take(),
        }
    }

    /// Unwrap back into the inner engine.
    pub fn into_inner(self) -> M {
        self.inner
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl<M: SubgraphMatcher> SubgraphMatcher for PanicIsolated<M> {
    fn enumerate(
        &self,
        g: &Graph,
        q: &Graph,
        budget: &SearchBudget,
        on_embedding: &mut dyn FnMut(&[NodeId]) -> bool,
    ) -> MatchStats {
        let mut delivered = 0u64;
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.inner.enumerate(g, q, budget, &mut |e| {
                delivered += 1;
                on_embedding(e)
            })
        }));
        match caught {
            Ok(stats) => stats,
            Err(payload) => {
                let text = panic_text(&*payload);
                match self.last_panic.lock() {
                    Ok(mut slot) => *slot = Some(text),
                    Err(poisoned) => *poisoned.into_inner() = Some(text),
                }
                MatchStats {
                    // Steps spent inside the engine are lost with its
                    // stack; report only what provably happened.
                    steps: 0,
                    embeddings: delivered,
                    outcome: BudgetOutcome::Panicked,
                }
            }
        }
    }
}

/// Verify that `embedding` is a correct subgraph-isomorphism embedding
/// of `q` in `g`. Used by oracle tests and debug assertions.
pub fn verify_embedding(g: &Graph, q: &Graph, embedding: &[NodeId]) -> bool {
    if embedding.len() != q.node_count() {
        return false;
    }
    // Injectivity.
    let mut sorted = embedding.to_vec();
    sorted.sort_unstable();
    if sorted.windows(2).any(|w| w[0] == w[1]) {
        return false;
    }
    // Labels.
    for v in q.node_ids() {
        let d = embedding[v as usize];
        if (d as usize) >= g.node_count() || q.label(v) != g.label(d) {
            return false;
        }
    }
    // Edges (presence + label).
    for (u, v, l) in q.edges() {
        match g.edge_label(embedding[u as usize], embedding[v as usize]) {
            Some(gl) if gl == l => {}
            _ => return false,
        }
    }
    true
}

/// Candidates of query node `qv`: data nodes with the same label and at
/// least its degree (the baseline label-and-degree filter every engine
/// starts from).
pub fn label_degree_candidates<'g>(g: &'g Graph, q: &Graph, qv: NodeId) -> impl Iterator<Item = NodeId> + 'g {
    let deg = q.degree(qv);
    g.nodes_with_label(q.label(qv))
        .iter()
        .copied()
        .filter(move |&u| g.degree(u) >= deg)
}

/// Neighbor-label-frequency filter: `true` iff for every label, `u` has
/// at least as many neighbors with that label as `qv` does (TurboIso's
/// NLF pruning rule).
pub fn nlf_satisfied(g: &Graph, q: &Graph, qv: NodeId, u: NodeId) -> bool {
    // Query neighborhoods are tiny; count with a stack-friendly vec.
    let mut need: Vec<(LabelId, u32)> = Vec::with_capacity(q.degree(qv));
    for &qn in q.neighbors(qv) {
        let l = q.label(qn);
        match need.iter_mut().find(|(nl, _)| *nl == l) {
            Some((_, c)) => *c += 1,
            None => need.push((l, 1)),
        }
    }
    for &(l, c) in &need {
        let mut have = 0u32;
        for &gn in g.neighbors(u) {
            if g.label(gn) == l {
                have += 1;
                if have >= c {
                    break;
                }
            }
        }
        if have < c {
            return false;
        }
    }
    true
}

/// A matching order over query nodes in which every node after the
/// first is adjacent to at least one earlier node (required by the
/// connected backtracking enumerator). Returns `None` if the query is
/// disconnected.
pub fn connected_order_valid(q: &Graph, order: &[NodeId]) -> bool {
    if order.len() != q.node_count() {
        return false;
    }
    let mut placed = vec![false; q.node_count()];
    for (i, &v) in order.iter().enumerate() {
        if placed[v as usize] {
            return false; // duplicate
        }
        if i > 0 && !q.neighbors(v).iter().any(|&n| placed[n as usize]) {
            return false;
        }
        placed[v as usize] = true;
    }
    true
}

/// Generic connected backtracking enumerator.
///
/// Matches query nodes in `order` (which must satisfy
/// [`connected_order_valid`]); the candidates of each non-root node are
/// drawn from the data neighbors of an already-matched query neighbor
/// (so the partial embedding stays connected), then checked for label,
/// degree, injectivity and all back-edges. `root_candidates` supplies
/// the data nodes tried for `order[0]`.
///
/// This single routine, specialized by order and root supply, is the
/// engine room of Ullmann, TurboIso and CFL here; they differ in how
/// they pick orders, roots and extra pruning, which is exactly where
/// the published algorithms differ too.
pub struct OrderedBacktracker<'q> {
    order: &'q [NodeId],
    /// For order position i > 0: (position of a matched query neighbor
    /// in `order`, that neighbor's id, edge label on the tree edge).
    anchors: Vec<(usize, NodeId, LabelId)>,
}

impl<'q> OrderedBacktracker<'q> {
    /// Prepare a backtracker for the given matching order.
    ///
    /// # Panics
    /// Panics (debug) if the order is not connected; release builds
    /// would produce incomplete results, so callers must validate.
    pub fn new(q: &Graph, order: &'q [NodeId]) -> Self {
        debug_assert!(connected_order_valid(q, order), "order must be connected");
        let mut pos = vec![usize::MAX; q.node_count()];
        for (i, &v) in order.iter().enumerate() {
            pos[v as usize] = i;
        }
        let mut anchors = Vec::with_capacity(order.len());
        for (i, &v) in order.iter().enumerate() {
            if i == 0 {
                anchors.push((usize::MAX, u32::MAX, 0));
                continue;
            }
            // Anchor on the earliest-placed neighbor (deterministic).
            let (mut best_pos, mut best_n) = (usize::MAX, u32::MAX);
            for &n in q.neighbors(v) {
                let p = pos[n as usize];
                if p < i && p < best_pos {
                    best_pos = p;
                    best_n = n;
                }
            }
            let el = q.edge_label(v, best_n).expect("anchor is a neighbor");
            anchors.push((best_pos, best_n, el));
        }
        Self { order, anchors }
    }

    /// Run the search. `root_candidates` seeds position 0.
    pub fn run(
        &self,
        g: &Graph,
        q: &Graph,
        root_candidates: &[NodeId],
        budget: &SearchBudget,
        on_embedding: &mut dyn FnMut(&[NodeId]) -> bool,
    ) -> MatchStats {
        let mut tracker = BudgetTracker::new(budget);
        let mut mapping = vec![u32::MAX; q.node_count()];
        let mut used = vec![false; g.node_count()];
        let root = self.order[0];
        'roots: for &r in root_candidates {
            if !tracker.step() {
                break;
            }
            if g.label(r) != q.label(root) || g.degree(r) < q.degree(root) {
                continue;
            }
            mapping[root as usize] = r;
            used[r as usize] = true;
            let keep_going = self.descend(g, q, 1, &mut mapping, &mut used, &mut tracker, on_embedding);
            used[r as usize] = false;
            mapping[root as usize] = u32::MAX;
            if !keep_going {
                break 'roots;
            }
        }
        MatchStats {
            steps: tracker.steps_used(),
            embeddings: tracker.embeddings_found(),
            outcome: tracker.outcome(),
        }
    }

    /// Returns `false` when the search must stop entirely (budget or
    /// callback stop).
    #[allow(clippy::too_many_arguments)]
    fn descend(
        &self,
        g: &Graph,
        q: &Graph,
        depth: usize,
        mapping: &mut [NodeId],
        used: &mut [bool],
        tracker: &mut BudgetTracker<'_>,
        on_embedding: &mut dyn FnMut(&[NodeId]) -> bool,
    ) -> bool {
        if depth == self.order.len() {
            let more = on_embedding(mapping);
            return tracker.embedding() && more;
        }
        let qv = self.order[depth];
        let (_, anchor_q, tree_el) = self.anchors[depth];
        let anchor_d = mapping[anchor_q as usize];
        let qlabel = q.label(qv);
        let qdeg = q.degree(qv);
        for (cand, el) in g.neighbors_with_labels(anchor_d) {
            if !tracker.step() {
                return false;
            }
            if el != tree_el
                || used[cand as usize]
                || g.label(cand) != qlabel
                || g.degree(cand) < qdeg
            {
                continue;
            }
            // Check all back-edges to already-mapped query neighbors.
            let mut ok = true;
            for (qn, qel) in q.neighbors_with_labels(qv) {
                let dm = mapping[qn as usize];
                if dm != u32::MAX && qn != anchor_q {
                    match g.edge_label(cand, dm) {
                        Some(gel) if gel == qel => {}
                        _ => {
                            ok = false;
                            break;
                        }
                    }
                }
            }
            if !ok {
                continue;
            }
            mapping[qv as usize] = cand;
            used[cand as usize] = true;
            let keep = self.descend(g, q, depth + 1, mapping, used, tracker, on_embedding);
            used[cand as usize] = false;
            mapping[qv as usize] = u32::MAX;
            if !keep {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_graph::builder::graph_from;

    fn order_ids(n: usize) -> Vec<NodeId> {
        (0..n as NodeId).collect()
    }

    #[test]
    fn verify_embedding_accepts_and_rejects() {
        let g = graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]).unwrap();
        let q = graph_from(&[0, 1], &[(0, 1)]).unwrap();
        assert!(verify_embedding(&g, &q, &[0, 1]));
        assert!(verify_embedding(&g, &q, &[2, 1]));
        assert!(!verify_embedding(&g, &q, &[0, 2])); // no edge / wrong label
        assert!(!verify_embedding(&g, &q, &[1, 1])); // not injective... also wrong label
        assert!(!verify_embedding(&g, &q, &[0])); // wrong arity
    }

    #[test]
    fn label_degree_candidates_filter() {
        let g = graph_from(&[0, 0, 1], &[(0, 1), (1, 2)]).unwrap();
        let q = graph_from(&[0, 1], &[(0, 1)]).unwrap();
        let c: Vec<_> = label_degree_candidates(&g, &q, 0).collect();
        assert_eq!(c, vec![0, 1]);
        // Query node with degree 2, label 0: only data node 1 qualifies.
        let q2 = graph_from(&[0, 1, 1], &[(0, 1), (0, 2)]).unwrap();
        let c2: Vec<_> = label_degree_candidates(&g, &q2, 0).collect();
        assert_eq!(c2, vec![1]);
    }

    #[test]
    fn nlf_counts_per_label() {
        // Data node 0 has neighbors labeled [1, 1]; node 3 has [1].
        let g = graph_from(&[0, 1, 1, 0], &[(0, 1), (0, 2), (3, 1)]).unwrap();
        // Query node 0 needs two label-1 neighbors.
        let q = graph_from(&[0, 1, 1], &[(0, 1), (0, 2)]).unwrap();
        assert!(nlf_satisfied(&g, &q, 0, 0));
        assert!(!nlf_satisfied(&g, &q, 0, 3));
    }

    #[test]
    fn connected_order_validation() {
        let q = graph_from(&[0, 0, 0], &[(0, 1), (1, 2)]).unwrap();
        assert!(connected_order_valid(&q, &[0, 1, 2]));
        assert!(connected_order_valid(&q, &[1, 0, 2]));
        assert!(!connected_order_valid(&q, &[0, 2, 1])); // 2 not adjacent to 0
        assert!(!connected_order_valid(&q, &[0, 1])); // wrong length
        assert!(!connected_order_valid(&q, &[0, 0, 1])); // duplicate
    }

    #[test]
    fn backtracker_finds_all_triangle_automorphisms() {
        let g = graph_from(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let q = g.clone();
        let order = order_ids(3);
        let bt = OrderedBacktracker::new(&q, &order);
        let roots: Vec<NodeId> = g.node_ids().collect();
        let mut found = Vec::new();
        let stats = bt.run(&g, &q, &roots, &SearchBudget::unlimited(), &mut |e| {
            found.push(e.to_vec());
            true
        });
        assert_eq!(found.len(), 6, "3! automorphisms of a mono-label triangle");
        assert_eq!(stats.embeddings, 6);
        assert_eq!(stats.outcome, BudgetOutcome::Completed);
        for e in &found {
            assert!(verify_embedding(&g, &q, e));
        }
    }

    #[test]
    fn backtracker_respects_labels_and_edge_labels() {
        let mut b = psi_graph::GraphBuilder::new();
        let n0 = b.add_node(0);
        let n1 = b.add_node(1);
        let n2 = b.add_node(1);
        b.add_labeled_edge(n0, n1, 5);
        b.add_labeled_edge(n0, n2, 6);
        let g = b.build().unwrap();

        let mut qb = psi_graph::GraphBuilder::new();
        let q0 = qb.add_node(0);
        let q1 = qb.add_node(1);
        qb.add_labeled_edge(q0, q1, 5);
        let q = qb.build().unwrap();

        let order = [q0, q1];
        let bt = OrderedBacktracker::new(&q, &order);
        let mut found = Vec::new();
        bt.run(&g, &q, &[n0], &SearchBudget::unlimited(), &mut |e| {
            found.push(e.to_vec());
            true
        });
        // Only the label-5 edge matches.
        assert_eq!(found, vec![vec![n0, n1]]);
    }

    #[test]
    fn backtracker_stops_on_budget() {
        // Complete mono-label graph K6: lots of embeddings of an edge.
        let mut edges = Vec::new();
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                edges.push((u, v));
            }
        }
        let g = graph_from(&[0; 6], &edges).unwrap();
        let q = graph_from(&[0, 0], &[(0, 1)]).unwrap();
        let order = order_ids(2);
        let bt = OrderedBacktracker::new(&q, &order);
        let roots: Vec<NodeId> = g.node_ids().collect();
        let budget = SearchBudget::steps(4);
        let mut n = 0;
        let stats = bt.run(&g, &q, &roots, &budget, &mut |_| {
            n += 1;
            true
        });
        assert_eq!(stats.outcome, BudgetOutcome::Exhausted);
        assert!(n < 30, "must stop early, saw {n}");
    }

    #[test]
    fn callback_can_stop_search() {
        let g = graph_from(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let q = graph_from(&[0, 0], &[(0, 1)]).unwrap();
        let order = order_ids(2);
        let bt = OrderedBacktracker::new(&q, &order);
        let roots: Vec<NodeId> = g.node_ids().collect();
        let mut n = 0;
        bt.run(&g, &q, &roots, &SearchBudget::unlimited(), &mut |_| {
            n += 1;
            false
        });
        assert_eq!(n, 1);
    }

    /// Delivers `before` fake embeddings, then panics.
    struct FaultyEngine {
        before: u64,
    }

    impl SubgraphMatcher for FaultyEngine {
        fn enumerate(
            &self,
            _g: &Graph,
            q: &Graph,
            _budget: &SearchBudget,
            on_embedding: &mut dyn FnMut(&[NodeId]) -> bool,
        ) -> MatchStats {
            let fake: Vec<NodeId> = (0..q.node_count() as NodeId).collect();
            for _ in 0..self.before {
                on_embedding(&fake);
            }
            panic!("engine bug at embedding {}", self.before);
        }
    }

    #[test]
    fn panic_isolated_contains_engine_panics() {
        let g = graph_from(&[0, 0], &[(0, 1)]).unwrap();
        let q = g.clone();
        let iso = PanicIsolated::new(FaultyEngine { before: 2 });
        let mut seen = 0;
        let stats = iso.enumerate(&g, &q, &SearchBudget::unlimited(), &mut |_| {
            seen += 1;
            true
        });
        assert_eq!(stats.outcome, BudgetOutcome::Panicked);
        assert_eq!(stats.embeddings, 2);
        assert_eq!(seen, 2, "pre-panic embeddings must be preserved");
        let reason = iso.take_panic().expect("panic text stored");
        assert!(reason.contains("engine bug"), "{reason}");
        assert!(iso.take_panic().is_none(), "take_panic clears the slot");
    }

    #[test]
    fn panic_isolated_is_transparent_for_healthy_engines() {
        let g = graph_from(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let q = g.clone();
        struct Bt;
        impl SubgraphMatcher for Bt {
            fn enumerate(
                &self,
                g: &Graph,
                q: &Graph,
                budget: &SearchBudget,
                on_embedding: &mut dyn FnMut(&[NodeId]) -> bool,
            ) -> MatchStats {
                let order: Vec<NodeId> = (0..q.node_count() as NodeId).collect();
                let roots: Vec<NodeId> = g.node_ids().collect();
                OrderedBacktracker::new(q, &order).run(g, q, &roots, budget, on_embedding)
            }
        }
        let plain = Bt.find_all(&g, &q, &SearchBudget::unlimited());
        let wrapped = PanicIsolated::new(Bt).find_all(&g, &q, &SearchBudget::unlimited());
        assert_eq!(plain.embeddings, wrapped.embeddings);
        assert_eq!(plain.stats, wrapped.stats);
    }

    #[test]
    fn single_node_query_enumerates_label_matches() {
        let g = graph_from(&[0, 1, 0], &[(0, 1), (1, 2)]).unwrap();
        let q = graph_from(&[0], &[]).unwrap();
        let order = [0u32];
        let bt = OrderedBacktracker::new(&q, &order);
        let roots: Vec<NodeId> = g.node_ids().collect();
        let mut found = Vec::new();
        bt.run(&g, &q, &roots, &SearchBudget::unlimited(), &mut |e| {
            found.push(e[0]);
            true
        });
        assert_eq!(found, vec![0, 2]);
    }
}
