//! VF2 (Cordella, Foggia, Sansone, Vento, TPAMI 2004) for subgraph
//! isomorphism.
//!
//! VF2 grows a partial mapping one pair at a time, choosing the next
//! query node from the *terminal set* (unmapped nodes adjacent to the
//! mapped region) and pruning with feasibility rules: label equality,
//! consistency of edges into the mapped region, and a one-step
//! lookahead comparing terminal/unexplored neighbor counts. Serves as
//! the second independent oracle next to [`crate::ullmann`].

use psi_graph::{Graph, NodeId};

use crate::budget::{BudgetTracker, SearchBudget};
use crate::common::{MatchStats, SubgraphMatcher};

/// The VF2 engine (stateless).
#[derive(Debug, Clone, Copy, Default)]
pub struct Vf2;

struct State<'a> {
    g: &'a Graph,
    q: &'a Graph,
    /// query → data (u32::MAX = unmapped)
    core_q: Vec<NodeId>,
    /// data → query (u32::MAX = unmapped)
    core_g: Vec<NodeId>,
    /// depth at which a query node entered the terminal set (0 = never).
    tin_q: Vec<u32>,
    /// same for data nodes.
    tin_g: Vec<u32>,
    depth: u32,
}

impl<'a> State<'a> {
    fn new(g: &'a Graph, q: &'a Graph) -> Self {
        Self {
            g,
            q,
            core_q: vec![u32::MAX; q.node_count()],
            core_g: vec![u32::MAX; g.node_count()],
            tin_q: vec![0; q.node_count()],
            tin_g: vec![0; g.node_count()],
            depth: 0,
        }
    }

    /// Next query node: the lowest-id terminal query node, or (if the
    /// terminal set is empty, e.g. disconnected query) the lowest-id
    /// unmapped node.
    fn next_query_node(&self) -> Option<NodeId> {
        let mut fallback = None;
        for v in 0..self.q.node_count() as NodeId {
            if self.core_q[v as usize] == u32::MAX {
                if self.tin_q[v as usize] > 0 {
                    return Some(v);
                }
                if fallback.is_none() {
                    fallback = Some(v);
                }
            }
        }
        fallback
    }

    fn feasible(&self, v: NodeId, u: NodeId) -> bool {
        if self.q.label(v) != self.g.label(u) || self.g.degree(u) < self.q.degree(v) {
            return false;
        }
        // Edge consistency + lookahead counters.
        let (mut term_q, mut new_q) = (0usize, 0usize);
        for (qn, qel) in self.q.neighbors_with_labels(v) {
            let m = self.core_q[qn as usize];
            if m != u32::MAX {
                // Mapped query neighbor must map to a data neighbor of u
                // with matching edge label.
                match self.g.edge_label(u, m) {
                    Some(gel) if gel == qel => {}
                    _ => return false,
                }
            } else if self.tin_q[qn as usize] > 0 {
                term_q += 1;
            } else {
                new_q += 1;
            }
        }
        let (mut term_g, mut new_g) = (0usize, 0usize);
        for &gn in self.g.neighbors(u) {
            if self.core_g[gn as usize] != u32::MAX {
                // Data edges into the core with no query counterpart are
                // fine for (non-induced) subgraph isomorphism.
            } else if self.tin_g[gn as usize] > 0 {
                term_g += 1;
            } else {
                new_g += 1;
            }
        }
        // Lookahead: the data side must offer at least as many terminal
        // and fresh neighbors as the query side requires.
        term_g >= term_q && term_g + new_g >= term_q + new_q
    }

    fn push(&mut self, v: NodeId, u: NodeId) {
        self.depth += 1;
        self.core_q[v as usize] = u;
        self.core_g[u as usize] = v;
        if self.tin_q[v as usize] == 0 {
            self.tin_q[v as usize] = self.depth;
        }
        if self.tin_g[u as usize] == 0 {
            self.tin_g[u as usize] = self.depth;
        }
        for &qn in self.q.neighbors(v) {
            if self.tin_q[qn as usize] == 0 {
                self.tin_q[qn as usize] = self.depth;
            }
        }
        for &gn in self.g.neighbors(u) {
            if self.tin_g[gn as usize] == 0 {
                self.tin_g[gn as usize] = self.depth;
            }
        }
    }

    fn pop(&mut self, v: NodeId, u: NodeId) {
        for &qn in self.q.neighbors(v) {
            if self.tin_q[qn as usize] == self.depth {
                self.tin_q[qn as usize] = 0;
            }
        }
        for &gn in self.g.neighbors(u) {
            if self.tin_g[gn as usize] == self.depth {
                self.tin_g[gn as usize] = 0;
            }
        }
        if self.tin_q[v as usize] == self.depth {
            self.tin_q[v as usize] = 0;
        }
        if self.tin_g[u as usize] == self.depth {
            self.tin_g[u as usize] = 0;
        }
        self.core_q[v as usize] = u32::MAX;
        self.core_g[u as usize] = u32::MAX;
        self.depth -= 1;
    }

    /// Candidate data nodes for query node `v`: data terminal nodes if
    /// `v` is terminal, else all unmapped nodes with the right label.
    fn candidates(&self, v: NodeId) -> Vec<NodeId> {
        if self.tin_q[v as usize] > 0 {
            // v is adjacent to the mapped region: candidates are data
            // neighbors of the mapped image of one mapped query
            // neighbor (cheapest correct superset).
            for &qn in self.q.neighbors(v) {
                let m = self.core_q[qn as usize];
                if m != u32::MAX {
                    return self
                        .g
                        .neighbors(m)
                        .iter()
                        .copied()
                        .filter(|&u| self.core_g[u as usize] == u32::MAX)
                        .collect();
                }
            }
        }
        self.g
            .nodes_with_label(self.q.label(v))
            .iter()
            .copied()
            .filter(|&u| self.core_g[u as usize] == u32::MAX)
            .collect()
    }
}

impl SubgraphMatcher for Vf2 {
    fn enumerate(
        &self,
        g: &Graph,
        q: &Graph,
        budget: &SearchBudget,
        on_embedding: &mut dyn FnMut(&[NodeId]) -> bool,
    ) -> MatchStats {
        let mut tracker = BudgetTracker::new(budget);
        if q.node_count() == 0 {
            on_embedding(&[]);
            tracker.embedding();
            return MatchStats {
                steps: 0,
                embeddings: tracker.embeddings_found(),
                outcome: tracker.outcome(),
            };
        }
        let mut st = State::new(g, q);
        recurse(&mut st, &mut tracker, on_embedding);
        MatchStats {
            steps: tracker.steps_used(),
            embeddings: tracker.embeddings_found(),
            outcome: tracker.outcome(),
        }
    }
}

fn recurse(
    st: &mut State<'_>,
    tracker: &mut BudgetTracker<'_>,
    on_embedding: &mut dyn FnMut(&[NodeId]) -> bool,
) -> bool {
    if st.depth as usize == st.q.node_count() {
        let more = on_embedding(&st.core_q);
        return tracker.embedding() && more;
    }
    let v = st.next_query_node().expect("unmapped node exists");
    for u in st.candidates(v) {
        if !tracker.step() {
            return false;
        }
        if !st.feasible(v, u) {
            continue;
        }
        st.push(v, u);
        let keep = recurse(st, tracker, on_embedding);
        st.pop(v, u);
        if !keep {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::verify_embedding;
    use crate::ullmann::Ullmann;
    use psi_graph::builder::graph_from;

    #[test]
    fn agrees_with_ullmann_on_small_graphs() {
        let g = graph_from(
            &[0, 1, 0, 1, 2],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)],
        )
        .unwrap();
        for (ql, qe) in [
            (vec![0u16, 1], vec![(0u32, 1u32)]),
            (vec![0, 1, 2], vec![(0, 1), (1, 2)]),
            (vec![1, 1, 0], vec![(0, 1), (1, 2), (0, 2)]),
            (vec![0, 1, 0, 1], vec![(0, 1), (1, 2), (2, 3)]),
        ] {
            let q = graph_from(&ql, &qe).unwrap();
            let (a, _) = Vf2.count(&g, &q, &SearchBudget::unlimited());
            let (b, _) = Ullmann.count(&g, &q, &SearchBudget::unlimited());
            assert_eq!(a, b, "query {ql:?} {qe:?}");
        }
    }

    #[test]
    fn embeddings_verify() {
        let g = graph_from(&[0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
        let q = graph_from(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let r = Vf2.find_all(&g, &q, &SearchBudget::unlimited());
        assert!(!r.embeddings.is_empty());
        for e in &r.embeddings {
            assert!(verify_embedding(&g, &q, e));
        }
    }

    #[test]
    fn non_induced_semantics() {
        // Data triangle, query path of 3: the path embeds even though
        // the data has an extra edge (non-induced).
        let g = graph_from(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let q = graph_from(&[0, 0, 0], &[(0, 1), (1, 2)]).unwrap();
        let (n, _) = Vf2.count(&g, &q, &SearchBudget::unlimited());
        assert_eq!(n, 6);
    }

    #[test]
    fn disconnected_query() {
        let g = graph_from(&[0, 1, 0], &[(0, 1)]).unwrap();
        let q = graph_from(&[0, 0], &[]).unwrap();
        let (n, _) = Vf2.count(&g, &q, &SearchBudget::unlimited());
        assert_eq!(n, 2); // (0,2) and (2,0)
    }

    #[test]
    fn budget_stops_search() {
        let mut edges = Vec::new();
        for u in 0..8u32 {
            for v in (u + 1)..8 {
                edges.push((u, v));
            }
        }
        let g = graph_from(&[0; 8], &edges).unwrap();
        let q = graph_from(&[0, 0, 0], &[(0, 1), (1, 2)]).unwrap();
        let r = Vf2.find_all(&g, &q, &SearchBudget::steps(10));
        assert_eq!(r.stats.outcome, crate::BudgetOutcome::Exhausted);
    }

    #[test]
    fn no_match_fast_path() {
        let g = graph_from(&[0, 0], &[(0, 1)]).unwrap();
        let q = graph_from(&[5], &[]).unwrap();
        let (n, _) = Vf2.count(&g, &q, &SearchBudget::unlimited());
        assert_eq!(n, 0);
    }
}
