//! Property tests for the ML substrate: all three model families must
//! behave sanely on arbitrary (well-formed) tabular data.

use proptest::prelude::*;
use psi_ml::forest::RandomForest;
use psi_ml::mlp::Mlp;
use psi_ml::svm::LinearSvm;
use psi_ml::{accuracy, Classifier, Dataset};

/// A random dataset: `n` rows, `dim` features, 2–3 classes, with class
/// centers separated enough to be learnable.
fn dataset() -> impl Strategy<Value = Dataset> {
    (20usize..=80, 2usize..=5, 2usize..=3, any::<u64>()).prop_map(|(n, dim, classes, seed)| {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new(dim);
        for _ in 0..n {
            let c = rng.gen_range(0..classes);
            let row: Vec<f32> = (0..dim)
                .map(|_| c as f32 * 3.0 + rng.gen_range(-1.0..1.0))
                .collect();
            d.push(&row, c);
        }
        d
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Predictions are always within the trained class range.
    #[test]
    fn predictions_in_class_range(d in dataset(), seed in any::<u64>()) {
        let n_classes = d.n_classes();
        let mut rf = RandomForest::default();
        rf.fit(&d, seed);
        let mut svm = LinearSvm::default();
        svm.fit(&d, seed);
        for i in 0..d.len().min(10) {
            prop_assert!(rf.predict(d.row(i)) < n_classes);
            prop_assert!(svm.predict(d.row(i)) < n_classes);
        }
    }

    /// Training twice with the same seed gives identical models
    /// (bitwise-identical predictions) for all three families.
    #[test]
    fn training_is_deterministic(d in dataset(), seed in any::<u64>()) {
        let mut a = RandomForest::default();
        a.fit(&d, seed);
        let mut b = RandomForest::default();
        b.fit(&d, seed);
        for i in 0..d.len().min(10) {
            prop_assert_eq!(a.predict(d.row(i)), b.predict(d.row(i)));
        }
        let mut s1 = LinearSvm::default();
        s1.fit(&d, seed);
        let mut s2 = LinearSvm::default();
        s2.fit(&d, seed);
        for i in 0..d.len().min(10) {
            prop_assert_eq!(s1.predict(d.row(i)), s2.predict(d.row(i)));
        }
        let mut m1 = Mlp::default();
        m1.fit(&d, seed);
        let mut m2 = Mlp::default();
        m2.fit(&d, seed);
        for i in 0..d.len().min(10) {
            prop_assert_eq!(m1.predict(d.row(i)), m2.predict(d.row(i)));
        }
    }

    /// On well-separated blobs the forest's training accuracy is high
    /// (sanity: the learner actually learns).
    #[test]
    fn forest_fits_separable_data(d in dataset(), seed in any::<u64>()) {
        let mut rf = RandomForest::default();
        rf.fit(&d, seed);
        let preds: Vec<usize> = (0..d.len()).map(|i| rf.predict(d.row(i))).collect();
        prop_assert!(accuracy(&preds, d.labels()) > 0.9);
    }

    /// Forest probability estimates always form a distribution.
    #[test]
    fn forest_probas_are_distributions(d in dataset(), seed in any::<u64>()) {
        let mut rf = RandomForest::default();
        rf.fit(&d, seed);
        for i in 0..d.len().min(10) {
            let p = rf.predict_proba(d.row(i));
            prop_assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
            prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    /// Splitting never loses or duplicates rows.
    #[test]
    fn split_is_a_partition(d in dataset(), frac in 0.0f64..=1.0, seed in any::<u64>()) {
        let (train, test) = d.split(frac, seed);
        prop_assert_eq!(train.len() + test.len(), d.len());
        // Multiset of labels is preserved.
        let mut all: Vec<usize> = train.labels().to_vec();
        all.extend_from_slice(test.labels());
        all.sort_unstable();
        let mut orig = d.labels().to_vec();
        orig.sort_unstable();
        prop_assert_eq!(all, orig);
    }
}
