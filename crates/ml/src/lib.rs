//! # psi-ml
//!
//! Machine-learning substrate for SmartPSI (§4.2 and §5.4 of the
//! paper).
//!
//! SmartPSI trains two classifiers per query — Model α (binary: is this
//! node valid?) and Model β (multi-class: which execution plan is
//! cheapest for this node?) — on neighborhood-signature feature
//! vectors. The paper uses Random Forest after comparing it against
//! SVM and a neural network (§5.4: RF ≈ 95% accuracy on Human vs. 90%
//! for SVM and 92% for NN, and ~2× faster to build). All three model
//! families are implemented here from scratch so that comparison can be
//! reproduced:
//!
//! * [`tree::DecisionTree`] — CART with Gini impurity,
//! * [`forest::RandomForest`] — bagged CART ensemble with random
//!   feature subsets (Breiman 2001), the paper's production model,
//! * [`svm::LinearSvm`] — linear SVM, hinge loss, SGD, one-vs-rest,
//! * [`mlp::Mlp`] — one-hidden-layer ReLU network with softmax output.
//!
//! ```
//! use psi_ml::{Dataset, Classifier, forest::RandomForest};
//!
//! // Two blobs: class = (x > 0).
//! let mut ds = Dataset::new(1);
//! for i in 0..40 {
//!     let x = if i % 2 == 0 { 1.0 + i as f32 / 40.0 } else { -1.0 - i as f32 / 40.0 };
//!     ds.push(&[x], (i % 2 == 0) as usize);
//! }
//! let mut rf = RandomForest::default();
//! rf.fit(&ds, 7);
//! assert_eq!(rf.predict(&[2.5]), 1);
//! assert_eq!(rf.predict(&[-2.5]), 0);
//! ```

#![warn(missing_docs)]

pub mod dataset;
pub mod forest;
pub mod importance;
pub mod metrics;
pub mod mlp;
pub mod svm;
pub mod tree;

pub use dataset::Dataset;
pub use importance::{permutation_importance, top_features};
pub use metrics::{accuracy, confusion_matrix};

/// A trainable multi-class classifier over dense `f32` feature rows.
pub trait Classifier {
    /// Train on `data`; `seed` drives any internal randomness so runs
    /// are reproducible.
    fn fit(&mut self, data: &Dataset, seed: u64);

    /// Predict the class of one feature row.
    fn predict(&self, features: &[f32]) -> usize;

    /// Predict a batch (default: row-by-row).
    fn predict_batch(&self, rows: &[Vec<f32>]) -> Vec<usize> {
        rows.iter().map(|r| self.predict(r)).collect()
    }
}
