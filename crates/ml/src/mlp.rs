//! A small multilayer perceptron: one ReLU hidden layer, softmax
//! output, trained by mini-batch SGD with cross-entropy loss. The
//! "Neural Network" reference point of §5.4.

use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::{Classifier, Dataset};

/// MLP hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct MlpConfig {
    /// Hidden layer width.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Mini-batch size.
    pub batch: usize,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self {
            hidden: 32,
            epochs: 60,
            learning_rate: 0.05,
            batch: 16,
        }
    }
}

/// One-hidden-layer perceptron.
#[derive(Debug, Clone, Default)]
pub struct Mlp {
    config: MlpConfig,
    /// w1: hidden × dim (row-major), b1: hidden.
    w1: Vec<f32>,
    b1: Vec<f32>,
    /// w2: classes × hidden, b2: classes.
    w2: Vec<f32>,
    b2: Vec<f32>,
    dim: usize,
    n_classes: usize,
    scale: Vec<f32>,
}

impl Mlp {
    /// New untrained network.
    pub fn new(config: MlpConfig) -> Self {
        Self {
            config,
            ..Self::default()
        }
    }

    fn forward(&self, x: &[f32], hidden: &mut [f32], out: &mut [f32]) {
        let h = self.config.hidden;
        for (i, hi) in hidden.iter_mut().enumerate().take(h) {
            let mut s = self.b1[i];
            let row = &self.w1[i * self.dim..(i + 1) * self.dim];
            for (j, wj) in row.iter().enumerate() {
                let xj = x.get(j).copied().unwrap_or(0.0) / self.scale[j];
                s += wj * xj;
            }
            *hi = s.max(0.0); // ReLU
        }
        for (c, oc) in out.iter_mut().enumerate().take(self.n_classes) {
            let mut s = self.b2[c];
            let row = &self.w2[c * h..(c + 1) * h];
            for (i, wi) in row.iter().enumerate() {
                s += wi * hidden[i];
            }
            *oc = s;
        }
        softmax_in_place(out);
    }
}

fn softmax_in_place(v: &mut [f32]) {
    let max = v.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in v.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    for x in v.iter_mut() {
        *x /= sum;
    }
}

impl Classifier for Mlp {
    fn fit(&mut self, data: &Dataset, seed: u64) {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        self.dim = data.dim();
        self.n_classes = data.n_classes().max(2);
        let h = self.config.hidden;
        let mut rng = StdRng::seed_from_u64(seed);
        // He-style init for the ReLU layer.
        let std1 = (2.0 / self.dim.max(1) as f32).sqrt();
        let std2 = (2.0 / h as f32).sqrt();
        self.w1 = (0..h * self.dim).map(|_| rng.gen_range(-std1..std1)).collect();
        self.b1 = vec![0.0; h];
        self.w2 = (0..self.n_classes * h).map(|_| rng.gen_range(-std2..std2)).collect();
        self.b2 = vec![0.0; self.n_classes];
        self.scale = vec![1.0f32; self.dim];
        for i in 0..data.len() {
            for (j, &v) in data.row(i).iter().enumerate() {
                self.scale[j] = self.scale[j].max(v.abs());
            }
        }

        let n = data.len();
        let lr = self.config.learning_rate;
        let mut hidden = vec![0.0f32; h];
        let mut out = vec![0.0f32; self.n_classes];
        let mut xnorm = vec![0.0f32; self.dim];
        for _ in 0..self.config.epochs {
            for _ in 0..n.div_ceil(self.config.batch) {
                // Accumulate gradients over one mini batch.
                let mut gw1 = vec![0.0f32; h * self.dim];
                let mut gb1 = vec![0.0f32; h];
                let mut gw2 = vec![0.0f32; self.n_classes * h];
                let mut gb2 = vec![0.0f32; self.n_classes];
                let bsz = self.config.batch.min(n);
                for _ in 0..bsz {
                    let i = rng.gen_range(0..n);
                    let row = data.row(i);
                    for (j, xj) in xnorm.iter_mut().enumerate() {
                        *xj = row[j] / self.scale[j];
                    }
                    self.forward(row, &mut hidden, &mut out);
                    let y = data.label(i);
                    // dL/dlogit = softmax - onehot
                    for c in 0..self.n_classes {
                        let d = out[c] - if c == y { 1.0 } else { 0.0 };
                        gb2[c] += d;
                        for k in 0..h {
                            gw2[c * h + k] += d * hidden[k];
                        }
                    }
                    for k in 0..h {
                        if hidden[k] <= 0.0 {
                            continue; // ReLU gate
                        }
                        let mut dh = 0.0;
                        for (c, &oc) in out.iter().enumerate().take(self.n_classes) {
                            let d = oc - if c == y { 1.0 } else { 0.0 };
                            dh += d * self.w2[c * h + k];
                        }
                        gb1[k] += dh;
                        for (j, &xj) in xnorm.iter().enumerate() {
                            gw1[k * self.dim + j] += dh * xj;
                        }
                    }
                }
                let step = lr / bsz as f32;
                for (w, g) in self.w1.iter_mut().zip(&gw1) {
                    *w -= step * g;
                }
                for (b, g) in self.b1.iter_mut().zip(&gb1) {
                    *b -= step * g;
                }
                for (w, g) in self.w2.iter_mut().zip(&gw2) {
                    *w -= step * g;
                }
                for (b, g) in self.b2.iter_mut().zip(&gb2) {
                    *b -= step * g;
                }
            }
        }
    }

    fn predict(&self, features: &[f32]) -> usize {
        assert!(!self.w1.is_empty(), "mlp must be fitted first");
        let mut hidden = vec![0.0f32; self.config.hidden];
        let mut out = vec![0.0f32; self.n_classes];
        self.forward(features, &mut hidden, &mut out);
        out.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(c, _)| c)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    #[test]
    fn softmax_normalizes() {
        let mut v = vec![1.0, 2.0, 3.0];
        softmax_in_place(&mut v);
        assert!((v.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(v[2] > v[1] && v[1] > v[0]);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let mut v = vec![1000.0, 1001.0];
        softmax_in_place(&mut v);
        assert!(v.iter().all(|x| x.is_finite()));
        assert!(v[1] > v[0]);
    }

    #[test]
    fn learns_linear_boundary() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut d = Dataset::new(2);
        for _ in 0..400 {
            let c = rng.gen_range(0..2usize);
            let off = if c == 0 { -1.5f32 } else { 1.5 };
            d.push(&[off + rng.gen_range(-1.0..1.0), off + rng.gen_range(-1.0..1.0)], c);
        }
        let (train, test) = d.split(0.25, 1);
        let mut mlp = Mlp::default();
        mlp.fit(&train, 7);
        let preds: Vec<usize> = (0..test.len()).map(|i| mlp.predict(test.row(i))).collect();
        let acc = accuracy(&preds, test.labels());
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn learns_xor_which_linear_models_cannot() {
        let mut d = Dataset::new(2);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..300 {
            let a = rng.gen_bool(0.5);
            let b = rng.gen_bool(0.5);
            let x = if a { 1.0 } else { 0.0 };
            let y = if b { 1.0 } else { 0.0 };
            d.push(&[x, y], (a ^ b) as usize);
        }
        let mut mlp = Mlp::new(MlpConfig {
            hidden: 16,
            epochs: 200,
            learning_rate: 0.1,
            batch: 8,
        });
        mlp.fit(&d, 2);
        assert_eq!(mlp.predict(&[0.0, 0.0]), 0);
        assert_eq!(mlp.predict(&[1.0, 1.0]), 0);
        assert_eq!(mlp.predict(&[0.0, 1.0]), 1);
        assert_eq!(mlp.predict(&[1.0, 0.0]), 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut d = Dataset::new(1);
        for i in 0..50 {
            d.push(&[i as f32 / 25.0 - 1.0], (i % 2) as usize);
        }
        let mut a = Mlp::default();
        a.fit(&d, 5);
        let mut b = Mlp::default();
        b.fit(&d, 5);
        for i in 0..d.len() {
            assert_eq!(a.predict(d.row(i)), b.predict(d.row(i)));
        }
    }
}
