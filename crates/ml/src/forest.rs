//! Random Forest (Breiman 2001): bagged CART trees with random feature
//! subsets — the classifier SmartPSI deploys for both Model α and
//! Model β ("lightweight training time as well as a decent prediction
//! accuracy", §4.2).

use rand::{rngs::StdRng, SeedableRng};

use crate::tree::{DecisionTree, TreeConfig};
use crate::{Classifier, Dataset};

/// Forest hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree configuration (its `max_features` is overridden with
    /// `√dim` when [`ForestConfig::sqrt_features`] is set).
    pub tree: TreeConfig,
    /// Use `√dim` random features per split (standard for
    /// classification forests).
    pub sqrt_features: bool,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self {
            n_trees: 32,
            tree: TreeConfig {
                max_depth: 14,
                min_samples_split: 2,
                max_features: None,
            },
            sqrt_features: true,
        }
    }
}

/// A trained random forest.
#[derive(Debug, Clone, Default)]
pub struct RandomForest {
    config: ForestConfig,
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl RandomForest {
    /// New untrained forest.
    pub fn new(config: ForestConfig) -> Self {
        Self {
            config,
            trees: Vec::new(),
            n_classes: 0,
        }
    }

    /// Number of trained trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// [`Classifier::predict`] with observability: counts one
    /// [`psi_obs::Counter::MlInferences`] per call.
    pub fn predict_recorded(&self, features: &[f32], rec: &dyn psi_obs::Recorder) -> usize {
        rec.add(psi_obs::Counter::MlInferences, 1);
        self.predict(features)
    }

    /// Per-class vote fractions for one row (a cheap probability
    /// estimate).
    pub fn predict_proba(&self, features: &[f32]) -> Vec<f32> {
        assert!(!self.trees.is_empty(), "forest must be fitted first");
        let mut votes = vec![0u32; self.n_classes.max(1)];
        for t in &self.trees {
            let c = t.predict(features);
            if c < votes.len() {
                votes[c] += 1;
            }
        }
        let total = self.trees.len() as f32;
        votes.iter().map(|&v| v as f32 / total).collect()
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, data: &Dataset, seed: u64) {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        self.n_classes = data.n_classes();
        let mut tree_cfg = self.config.tree;
        if self.config.sqrt_features {
            tree_cfg.max_features = Some((data.dim() as f64).sqrt().ceil() as usize);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        self.trees = (0..self.config.n_trees)
            .map(|i| {
                let indices = data.bootstrap_indices(&mut rng);
                let mut t = DecisionTree::new(tree_cfg);
                t.fit_indices(data, &indices, seed.wrapping_add(i as u64 * 0x9e37_79b9));
                t
            })
            .collect();
    }

    fn predict(&self, features: &[f32]) -> usize {
        let proba = self.predict_proba(features);
        proba
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(c, _)| c)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use rand::Rng;

    #[test]
    fn classifies_blobs_well() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut d = Dataset::new(2);
        for _ in 0..400 {
            let c = rng.gen_range(0..2usize);
            let (cx, cy) = if c == 0 { (-1.0f32, -1.0f32) } else { (1.0, 1.0) };
            d.push(&[cx + rng.gen_range(-0.6..0.6), cy + rng.gen_range(-0.6..0.6)], c);
        }
        let (train, test) = d.split(0.25, 1);
        let mut rf = RandomForest::default();
        rf.fit(&train, 7);
        let preds: Vec<usize> = (0..test.len()).map(|i| rf.predict(test.row(i))).collect();
        let acc = accuracy(&preds, test.labels());
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn proba_sums_to_one() {
        let mut d = Dataset::new(1);
        for i in 0..20 {
            d.push(&[i as f32], (i % 2) as usize);
        }
        let mut rf = RandomForest::default();
        rf.fit(&d, 1);
        let p = rf.predict_proba(&[3.0]);
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut d = Dataset::new(1);
        for i in 0..40 {
            d.push(&[(i % 7) as f32], (i % 2) as usize);
        }
        let mut a = RandomForest::default();
        a.fit(&d, 11);
        let mut b = RandomForest::default();
        b.fit(&d, 11);
        for x in 0..10 {
            assert_eq!(a.predict(&[x as f32]), b.predict(&[x as f32]));
        }
    }

    #[test]
    fn forest_beats_single_tree_on_noisy_data() {
        // With label noise, a bagged ensemble should generalize at
        // least as well as one fully-grown tree.
        let mut rng = StdRng::seed_from_u64(21);
        let mut d = Dataset::new(3);
        for _ in 0..600 {
            let c = rng.gen_range(0..2usize);
            let base = if c == 0 { -0.5f32 } else { 0.5 };
            let noisy_label = if rng.gen_bool(0.15) { 1 - c } else { c };
            d.push(
                &[
                    base + rng.gen_range(-1.0..1.0),
                    base + rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0), // pure noise feature
                ],
                noisy_label,
            );
        }
        let (train, test) = d.split(0.3, 2);
        let mut rf = RandomForest::default();
        rf.fit(&train, 3);
        let mut tree = crate::tree::DecisionTree::default();
        tree.fit(&train, 3);
        let rf_acc = accuracy(
            &(0..test.len()).map(|i| rf.predict(test.row(i))).collect::<Vec<_>>(),
            test.labels(),
        );
        let tree_acc = accuracy(
            &(0..test.len()).map(|i| tree.predict(test.row(i))).collect::<Vec<_>>(),
            test.labels(),
        );
        assert!(
            rf_acc + 0.02 >= tree_acc,
            "forest {rf_acc} should not lose to tree {tree_acc}"
        );
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_fit_rejected() {
        let mut rf = RandomForest::default();
        rf.fit(&Dataset::new(2), 1);
    }

    #[test]
    fn predict_batch_matches_predict() {
        let mut d = Dataset::new(1);
        for i in 0..20 {
            d.push(&[i as f32], (i % 2) as usize);
        }
        let mut rf = RandomForest::default();
        rf.fit(&d, 1);
        let rows: Vec<Vec<f32>> = (0..5).map(|i| vec![i as f32]).collect();
        let batch = rf.predict_batch(&rows);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(batch[i], rf.predict(r));
        }
    }
}
