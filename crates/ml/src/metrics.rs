//! Classification metrics: accuracy and confusion matrices, as used in
//! Figure 11 and §5.4 of the paper.

/// Fraction of predictions equal to the truth.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn accuracy(predictions: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(predictions.len(), truth.len(), "length mismatch");
    if truth.is_empty() {
        return 1.0;
    }
    let correct = predictions.iter().zip(truth).filter(|(p, t)| p == t).count();
    correct as f64 / truth.len() as f64
}

/// Confusion matrix `m[truth][predicted]`.
pub fn confusion_matrix(predictions: &[usize], truth: &[usize], n_classes: usize) -> Vec<Vec<usize>> {
    assert_eq!(predictions.len(), truth.len(), "length mismatch");
    let mut m = vec![vec![0usize; n_classes]; n_classes];
    for (&p, &t) in predictions.iter().zip(truth) {
        if p < n_classes && t < n_classes {
            m[t][p] += 1;
        }
    }
    m
}

/// Precision of `class`: TP / (TP + FP). Returns 1.0 when the class is
/// never predicted.
pub fn precision(predictions: &[usize], truth: &[usize], class: usize) -> f64 {
    let (mut tp, mut fp) = (0usize, 0usize);
    for (&p, &t) in predictions.iter().zip(truth) {
        if p == class {
            if t == class {
                tp += 1;
            } else {
                fp += 1;
            }
        }
    }
    if tp + fp == 0 {
        1.0
    } else {
        tp as f64 / (tp + fp) as f64
    }
}

/// Recall of `class`: TP / (TP + FN). Returns 1.0 when the class never
/// occurs in the truth.
pub fn recall(predictions: &[usize], truth: &[usize], class: usize) -> f64 {
    let (mut tp, mut fnn) = (0usize, 0usize);
    for (&p, &t) in predictions.iter().zip(truth) {
        if t == class {
            if p == class {
                tp += 1;
            } else {
                fnn += 1;
            }
        }
    }
    if tp + fnn == 0 {
        1.0
    } else {
        tp as f64 / (tp + fnn) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[0, 1, 1], &[0, 1, 0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 1.0);
        assert_eq!(accuracy(&[1, 1], &[1, 1]), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_length_mismatch() {
        accuracy(&[0], &[0, 1]);
    }

    #[test]
    fn confusion_matrix_layout() {
        let m = confusion_matrix(&[0, 1, 1, 0], &[0, 1, 0, 1], 2);
        assert_eq!(m[0][0], 1); // truth 0 predicted 0
        assert_eq!(m[0][1], 1); // truth 0 predicted 1
        assert_eq!(m[1][0], 1);
        assert_eq!(m[1][1], 1);
    }

    #[test]
    fn precision_recall() {
        let p = [1, 1, 0, 1];
        let t = [1, 0, 0, 1];
        assert_eq!(precision(&p, &t, 1), 2.0 / 3.0);
        assert_eq!(recall(&p, &t, 1), 1.0);
        assert_eq!(precision(&p, &t, 0), 1.0);
        assert_eq!(recall(&p, &t, 0), 0.5);
        // Class never predicted / never true.
        assert_eq!(precision(&p, &t, 7), 1.0);
        assert_eq!(recall(&p, &t, 7), 1.0);
    }
}
