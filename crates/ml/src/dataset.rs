//! Tabular datasets: dense feature rows with integer class labels.

use rand::{rngs::StdRng, Rng, SeedableRng};

/// A labeled tabular dataset.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    features: Vec<f32>,
    labels: Vec<usize>,
    dim: usize,
}

impl Dataset {
    /// Create an empty dataset with `dim` features per row.
    pub fn new(dim: usize) -> Self {
        Self {
            features: Vec::new(),
            labels: Vec::new(),
            dim,
        }
    }

    /// Create with reserved capacity.
    pub fn with_capacity(dim: usize, rows: usize) -> Self {
        Self {
            features: Vec::with_capacity(dim * rows),
            labels: Vec::with_capacity(rows),
            dim,
        }
    }

    /// Append one row.
    ///
    /// # Panics
    /// Panics if the row length differs from the dataset dimension.
    pub fn push(&mut self, row: &[f32], label: usize) {
        assert_eq!(row.len(), self.dim, "feature row has wrong dimension");
        self.features.extend_from_slice(row);
        self.labels.push(label);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Feature row `i`.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.features[i * self.dim..(i + 1) * self.dim]
    }

    /// Label of row `i`.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of classes (`max label + 1`), 0 for an empty dataset.
    pub fn n_classes(&self) -> usize {
        self.labels.iter().map(|&l| l + 1).max().unwrap_or(0)
    }

    /// Split into (train, test) with `test_fraction` of rows held out,
    /// shuffled by `seed`.
    pub fn split(&self, test_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        assert!((0.0..=1.0).contains(&test_fraction));
        let mut idx: Vec<usize> = (0..self.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        // Fisher–Yates.
        for i in (1..idx.len()).rev() {
            let j = rng.gen_range(0..=i);
            idx.swap(i, j);
        }
        let n_test = (self.len() as f64 * test_fraction).round() as usize;
        let mut test = Dataset::with_capacity(self.dim, n_test);
        let mut train = Dataset::with_capacity(self.dim, self.len() - n_test);
        for (k, &i) in idx.iter().enumerate() {
            if k < n_test {
                test.push(self.row(i), self.label(i));
            } else {
                train.push(self.row(i), self.label(i));
            }
        }
        (train, test)
    }

    /// Bootstrap sample of the same size (sampling with replacement),
    /// returning row indices — used by bagging.
    pub fn bootstrap_indices(&self, rng: &mut StdRng) -> Vec<usize> {
        (0..self.len()).map(|_| rng.gen_range(0..self.len())).collect()
    }

    /// Per-class row counts.
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.n_classes()];
        for &l in &self.labels {
            h[l] += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut d = Dataset::new(2);
        for i in 0..10 {
            d.push(&[i as f32, -(i as f32)], i % 3);
        }
        d
    }

    #[test]
    fn push_and_access() {
        let d = toy();
        assert_eq!(d.len(), 10);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.row(3), &[3.0, -3.0]);
        assert_eq!(d.label(3), 0);
        assert_eq!(d.n_classes(), 3);
        assert!(!d.is_empty());
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn wrong_dim_rejected() {
        let mut d = Dataset::new(2);
        d.push(&[1.0], 0);
    }

    #[test]
    fn split_partitions_rows() {
        let d = toy();
        let (train, test) = d.split(0.3, 1);
        assert_eq!(test.len(), 3);
        assert_eq!(train.len(), 7);
        assert_eq!(train.dim(), 2);
    }

    #[test]
    fn split_is_deterministic() {
        let d = toy();
        let (a, _) = d.split(0.5, 9);
        let (b, _) = d.split(0.5, 9);
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn bootstrap_has_same_size() {
        let d = toy();
        let mut rng = StdRng::seed_from_u64(3);
        let idx = d.bootstrap_indices(&mut rng);
        assert_eq!(idx.len(), 10);
        assert!(idx.iter().all(|&i| i < 10));
    }

    #[test]
    fn class_histogram_counts() {
        let d = toy();
        assert_eq!(d.class_histogram(), vec![4, 3, 3]);
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::new(4);
        assert!(d.is_empty());
        assert_eq!(d.n_classes(), 0);
        assert_eq!(d.class_histogram(), Vec::<usize>::new());
    }
}
