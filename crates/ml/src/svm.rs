//! Linear support-vector machine trained with stochastic sub-gradient
//! descent on the hinge loss (Pegasos-style), with one-vs-rest
//! multi-class reduction. One of the two alternatives the paper
//! compares Random Forest against in §5.4.

use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::{Classifier, Dataset};

/// SVM hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct SvmConfig {
    /// Regularization strength λ.
    pub lambda: f32,
    /// Number of SGD epochs.
    pub epochs: usize,
}

impl Default for SvmConfig {
    fn default() -> Self {
        Self {
            lambda: 1e-3,
            epochs: 40,
        }
    }
}

/// One-vs-rest linear SVM.
#[derive(Debug, Clone, Default)]
pub struct LinearSvm {
    config: SvmConfig,
    /// One (weights, bias) pair per class.
    models: Vec<(Vec<f32>, f32)>,
    /// Per-feature scale (max |value|) for normalization.
    scale: Vec<f32>,
}

impl LinearSvm {
    /// New untrained SVM.
    pub fn new(config: SvmConfig) -> Self {
        Self {
            config,
            models: Vec::new(),
            scale: Vec::new(),
        }
    }

    fn margin(&self, class: usize, x: &[f32]) -> f32 {
        let (w, b) = &self.models[class];
        let mut s = *b;
        for (i, wi) in w.iter().enumerate() {
            let xi = x.get(i).copied().unwrap_or(0.0) / self.scale[i];
            s += wi * xi;
        }
        s
    }

    /// Train one binary (class vs rest) Pegasos model.
    fn fit_binary(&self, data: &Dataset, class: usize, rng: &mut StdRng) -> (Vec<f32>, f32) {
        let dim = data.dim();
        let mut w = vec![0.0f32; dim];
        let mut b = 0.0f32;
        let lambda = self.config.lambda;
        let n = data.len();
        let mut t = 0usize;
        let mut x = vec![0.0f32; dim];
        for _ in 0..self.config.epochs {
            for _ in 0..n {
                t += 1;
                let i = rng.gen_range(0..n);
                let row = data.row(i);
                for (j, xj) in x.iter_mut().enumerate() {
                    *xj = row[j] / self.scale[j];
                }
                let y = if data.label(i) == class { 1.0f32 } else { -1.0 };
                let eta = 1.0 / (lambda * t as f32);
                let score: f32 = w.iter().zip(&x).map(|(wi, xi)| wi * xi).sum::<f32>() + b;
                // Sub-gradient step: shrink, plus hinge correction.
                let shrink = 1.0 - eta * lambda;
                for wi in &mut w {
                    *wi *= shrink;
                }
                if y * score < 1.0 {
                    for (wi, xi) in w.iter_mut().zip(&x) {
                        *wi += eta * y * xi;
                    }
                    b += eta * y;
                }
            }
        }
        (w, b)
    }
}

impl Classifier for LinearSvm {
    fn fit(&mut self, data: &Dataset, seed: u64) {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let dim = data.dim();
        // Per-feature max-abs scaling keeps SGD stable on signature
        // features whose ranges differ by orders of magnitude.
        self.scale = vec![1.0f32; dim];
        for i in 0..data.len() {
            for (j, &v) in data.row(i).iter().enumerate() {
                self.scale[j] = self.scale[j].max(v.abs());
            }
        }
        let n_classes = data.n_classes();
        let mut rng = StdRng::seed_from_u64(seed);
        self.models = (0..n_classes)
            .map(|c| self.fit_binary(data, c, &mut rng))
            .collect();
    }

    fn predict(&self, features: &[f32]) -> usize {
        assert!(!self.models.is_empty(), "svm must be fitted first");
        (0..self.models.len())
            .max_by(|&a, &b| {
                self.margin(a, features)
                    .partial_cmp(&self.margin(b, features))
                    .unwrap()
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    fn separable(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new(2);
        for _ in 0..n {
            let c = rng.gen_range(0..2usize);
            let off = if c == 0 { -2.0f32 } else { 2.0 };
            d.push(
                &[off + rng.gen_range(-1.0..1.0), off + rng.gen_range(-1.0..1.0)],
                c,
            );
        }
        d
    }

    #[test]
    fn separates_blobs() {
        let d = separable(300, 4);
        let (train, test) = d.split(0.3, 1);
        let mut svm = LinearSvm::default();
        svm.fit(&train, 2);
        let preds: Vec<usize> = (0..test.len()).map(|i| svm.predict(test.row(i))).collect();
        let acc = accuracy(&preds, test.labels());
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn three_class_one_vs_rest() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut d = Dataset::new(2);
        for _ in 0..450 {
            let c = rng.gen_range(0..3usize);
            let (cx, cy) = [(0.0f32, 3.0f32), (-3.0, -3.0), (3.0, -3.0)][c];
            d.push(&[cx + rng.gen_range(-1.0..1.0), cy + rng.gen_range(-1.0..1.0)], c);
        }
        let (train, test) = d.split(0.3, 1);
        let mut svm = LinearSvm::default();
        svm.fit(&train, 3);
        let preds: Vec<usize> = (0..test.len()).map(|i| svm.predict(test.row(i))).collect();
        let acc = accuracy(&preds, test.labels());
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn scaling_handles_large_feature_ranges() {
        let mut d = Dataset::new(2);
        for i in 0..100 {
            let c = (i % 2) as usize;
            let big = if c == 0 { 1.0e4f32 } else { 3.0e4 };
            d.push(&[big + (i as f32), 0.01 * i as f32], c);
        }
        let mut svm = LinearSvm::default();
        svm.fit(&d, 5);
        let preds: Vec<usize> = (0..d.len()).map(|i| svm.predict(d.row(i))).collect();
        let acc = accuracy(&preds, d.labels());
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn deterministic_given_seed() {
        let d = separable(100, 6);
        let mut a = LinearSvm::default();
        a.fit(&d, 1);
        let mut b = LinearSvm::default();
        b.fit(&d, 1);
        for i in 0..d.len() {
            assert_eq!(a.predict(d.row(i)), b.predict(d.row(i)));
        }
    }

    #[test]
    fn short_input_row_tolerated() {
        let d = separable(60, 7);
        let mut svm = LinearSvm::default();
        svm.fit(&d, 1);
        let _ = svm.predict(&[1.0]); // missing features read as 0
    }
}
