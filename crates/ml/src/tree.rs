//! CART decision trees with Gini impurity.
//!
//! Supports the random-feature-subset mode used inside
//! [`crate::forest::RandomForest`] (consider only `√dim` random
//! features per split, Breiman's recommendation for classification).

use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::{Classifier, Dataset};

/// Tree hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Do not split nodes smaller than this.
    pub min_samples_split: usize,
    /// Number of random features considered per split
    /// (`None` = all features; forests pass `√dim`).
    pub max_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 16,
            min_samples_split: 2,
            max_features: None,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        class: usize,
    },
    Split {
        feature: usize,
        threshold: f32,
        /// children[0] = feature ≤ threshold, children[1] = >.
        children: Box<[Node; 2]>,
    },
}

/// A trained CART classifier.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    config: TreeConfig,
    root: Option<Node>,
    n_classes: usize,
}

impl DecisionTree {
    /// New untrained tree.
    pub fn new(config: TreeConfig) -> Self {
        Self {
            config,
            root: None,
            n_classes: 0,
        }
    }

    /// Fit on a subset of rows (bagging support). `indices` may repeat.
    pub fn fit_indices(&mut self, data: &Dataset, indices: &[usize], seed: u64) {
        self.n_classes = data.n_classes().max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut idx = indices.to_vec();
        self.root = Some(self.grow(data, &mut idx, 0, &mut rng));
    }

    fn majority(&self, data: &Dataset, idx: &[usize]) -> usize {
        let mut counts = vec![0usize; self.n_classes];
        for &i in idx {
            counts[data.label(i)] += 1;
        }
        counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .map(|(cls, _)| cls)
            .unwrap_or(0)
    }

    fn gini_of_counts(counts: &[usize], total: usize) -> f64 {
        if total == 0 {
            return 0.0;
        }
        let t = total as f64;
        1.0 - counts
            .iter()
            .map(|&c| {
                let p = c as f64 / t;
                p * p
            })
            .sum::<f64>()
    }

    /// Grow a subtree over `idx` (in-place partitioned as we recurse).
    fn grow(&self, data: &Dataset, idx: &mut [usize], depth: usize, rng: &mut StdRng) -> Node {
        let majority = self.majority(data, idx);
        if depth >= self.config.max_depth || idx.len() < self.config.min_samples_split {
            return Node::Leaf { class: majority };
        }
        // Pure node?
        let first = data.label(idx[0]);
        if idx.iter().all(|&i| data.label(i) == first) {
            return Node::Leaf { class: first };
        }

        let dim = data.dim();
        let k = self.config.max_features.unwrap_or(dim).min(dim).max(1);
        // Sample k distinct features (partial Fisher–Yates over 0..dim).
        let mut feats: Vec<usize> = (0..dim).collect();
        for i in 0..k {
            let j = rng.gen_range(i..dim);
            feats.swap(i, j);
        }

        let mut best: Option<(usize, f32, f64)> = None; // (feature, threshold, weighted gini)
        let mut values: Vec<(f32, usize)> = Vec::with_capacity(idx.len());
        for &f in &feats[..k] {
            values.clear();
            values.extend(idx.iter().map(|&i| (data.row(i)[f], data.label(i))));
            values.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            // Sweep thresholds between distinct consecutive values.
            let total = values.len();
            let mut left_counts = vec![0usize; self.n_classes];
            let mut right_counts = vec![0usize; self.n_classes];
            for &(_, l) in values.iter() {
                right_counts[l] += 1;
            }
            for i in 0..total - 1 {
                let l = values[i].1;
                left_counts[l] += 1;
                right_counts[l] -= 1;
                if values[i].0 == values[i + 1].0 {
                    continue;
                }
                let nl = i + 1;
                let nr = total - nl;
                let g = (nl as f64 * Self::gini_of_counts(&left_counts, nl)
                    + nr as f64 * Self::gini_of_counts(&right_counts, nr))
                    / total as f64;
                let threshold = 0.5 * (values[i].0 + values[i + 1].0);
                if best.is_none_or(|(_, _, bg)| g < bg) {
                    best = Some((f, threshold, g));
                }
            }
        }

        let Some((feature, threshold, _)) = best else {
            // All sampled features constant on this node.
            return Node::Leaf { class: majority };
        };

        // Partition idx around the split.
        let mid = partition(idx, |&i| data.row(i)[feature] <= threshold);
        if mid == 0 || mid == idx.len() {
            return Node::Leaf { class: majority };
        }
        let (left_idx, right_idx) = idx.split_at_mut(mid);
        let left = self.grow(data, left_idx, depth + 1, rng);
        let right = self.grow(data, right_idx, depth + 1, rng);
        Node::Split {
            feature,
            threshold,
            children: Box::new([left, right]),
        }
    }
}

/// Stable-order in-place partition; returns the size of the true-side
/// prefix.
fn partition<T, F: Fn(&T) -> bool>(items: &mut [T], pred: F) -> usize {
    let mut mid = 0;
    for i in 0..items.len() {
        if pred(&items[i]) {
            items.swap(mid, i);
            mid += 1;
        }
    }
    mid
}

impl Classifier for DecisionTree {
    fn fit(&mut self, data: &Dataset, seed: u64) {
        let indices: Vec<usize> = (0..data.len()).collect();
        self.fit_indices(data, &indices, seed);
    }

    fn predict(&self, features: &[f32]) -> usize {
        let mut node = self.root.as_ref().expect("tree must be fitted first");
        loop {
            match node {
                Node::Leaf { class } => return *class,
                Node::Split {
                    feature,
                    threshold,
                    children,
                } => {
                    let x = features.get(*feature).copied().unwrap_or(0.0);
                    node = if x <= *threshold { &children[0] } else { &children[1] };
                }
            }
        }
    }
}

impl Default for DecisionTree {
    fn default() -> Self {
        Self::new(TreeConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linearly_separable(n: usize) -> Dataset {
        let mut d = Dataset::new(2);
        for i in 0..n {
            let t = i as f32 / n as f32;
            d.push(&[t, 1.0 - t], 0);
            d.push(&[t + 2.0, 1.0 - t], 1);
        }
        d
    }

    #[test]
    fn fits_separable_data_perfectly() {
        let d = linearly_separable(50);
        let mut t = DecisionTree::default();
        t.fit(&d, 1);
        for i in 0..d.len() {
            assert_eq!(t.predict(d.row(i)), d.label(i));
        }
    }

    #[test]
    fn xor_needs_depth_two() {
        let mut d = Dataset::new(2);
        for _ in 0..5 {
            d.push(&[0.0, 0.0], 0);
            d.push(&[1.0, 1.0], 0);
            d.push(&[0.0, 1.0], 1);
            d.push(&[1.0, 0.0], 1);
        }
        let mut t = DecisionTree::default();
        t.fit(&d, 1);
        assert_eq!(t.predict(&[0.0, 0.0]), 0);
        assert_eq!(t.predict(&[1.0, 1.0]), 0);
        assert_eq!(t.predict(&[0.0, 1.0]), 1);
        assert_eq!(t.predict(&[1.0, 0.0]), 1);
    }

    #[test]
    fn depth_limit_produces_leaf() {
        let d = linearly_separable(20);
        let mut t = DecisionTree::new(TreeConfig {
            max_depth: 0,
            ..TreeConfig::default()
        });
        t.fit(&d, 1);
        // A depth-0 tree predicts the majority class everywhere.
        let p = t.predict(&[0.5, 0.5]);
        assert_eq!(p, t.predict(&[99.0, -3.0]));
    }

    #[test]
    fn constant_features_yield_majority_leaf() {
        let mut d = Dataset::new(1);
        d.push(&[1.0], 0);
        d.push(&[1.0], 0);
        d.push(&[1.0], 1);
        let mut t = DecisionTree::default();
        t.fit(&d, 1);
        assert_eq!(t.predict(&[1.0]), 0);
    }

    #[test]
    fn multiclass() {
        let mut d = Dataset::new(1);
        for i in 0..30 {
            d.push(&[i as f32], (i / 10) as usize);
        }
        let mut t = DecisionTree::default();
        t.fit(&d, 1);
        assert_eq!(t.predict(&[2.0]), 0);
        assert_eq!(t.predict(&[15.0]), 1);
        assert_eq!(t.predict(&[25.0]), 2);
    }

    #[test]
    fn short_feature_row_defaults_missing_to_zero() {
        let d = linearly_separable(10);
        let mut t = DecisionTree::default();
        t.fit(&d, 1);
        // Must not panic even with too-short input.
        let _ = t.predict(&[]);
    }

    #[test]
    fn gini_math() {
        assert_eq!(DecisionTree::gini_of_counts(&[5, 0], 5), 0.0);
        assert!((DecisionTree::gini_of_counts(&[5, 5], 10) - 0.5).abs() < 1e-12);
        assert_eq!(DecisionTree::gini_of_counts(&[], 0), 0.0);
    }
}
