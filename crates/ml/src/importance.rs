//! Permutation feature importance (Breiman 2001, §10): how much does
//! held-out accuracy drop when one feature column is shuffled?
//!
//! Model-agnostic, so it works for any [`Classifier`]. SmartPSI's
//! features are signature label-weights, so the importances read
//! directly as "which labels' proximity decides validity" — useful to
//! sanity-check that Model α is learning structure rather than noise.

use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::metrics::accuracy;
use crate::{Classifier, Dataset};

/// Per-feature importance: baseline accuracy minus accuracy with that
/// feature permuted (averaged over `repeats` shuffles). Positive =
/// the model relies on the feature.
pub fn permutation_importance<C: Classifier>(
    model: &C,
    data: &Dataset,
    repeats: usize,
    seed: u64,
) -> Vec<f64> {
    assert!(repeats > 0, "need at least one repeat");
    let n = data.len();
    let dim = data.dim();
    let mut rng = StdRng::seed_from_u64(seed);

    let baseline_preds: Vec<usize> = (0..n).map(|i| model.predict(data.row(i))).collect();
    let baseline = accuracy(&baseline_preds, data.labels());

    let mut importances = vec![0.0f64; dim];
    let mut rows: Vec<Vec<f32>> = (0..n).map(|i| data.row(i).to_vec()).collect();
    for f in 0..dim {
        let mut drop_sum = 0.0;
        for _ in 0..repeats {
            // Fisher–Yates over column f.
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                let tmp = rows[i][f];
                rows[i][f] = rows[j][f];
                rows[j][f] = tmp;
            }
            let preds: Vec<usize> = rows.iter().map(|r| model.predict(r)).collect();
            drop_sum += baseline - accuracy(&preds, data.labels());
        }
        // Restore the column.
        for (i, row) in rows.iter_mut().enumerate() {
            row[f] = data.row(i)[f];
        }
        importances[f] = drop_sum / repeats as f64;
    }
    importances
}

/// Indices of the `k` most important features, descending.
pub fn top_features(importances: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..importances.len()).collect();
    idx.sort_by(|&a, &b| importances[b].partial_cmp(&importances[a]).unwrap());
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::RandomForest;

    /// Feature 0 fully determines the class; features 1–2 are noise.
    fn informative_dataset(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new(3);
        for _ in 0..300 {
            let c = rng.gen_range(0..2usize);
            d.push(
                &[
                    if c == 0 { -1.0 } else { 1.0 },
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                ],
                c,
            );
        }
        d
    }

    #[test]
    fn informative_feature_dominates() {
        let d = informative_dataset(1);
        let mut rf = RandomForest::default();
        rf.fit(&d, 2);
        let imp = permutation_importance(&rf, &d, 3, 3);
        assert!(imp[0] > 0.3, "feature 0: {imp:?}");
        assert!(imp[0] > 10.0 * imp[1].max(imp[2]).max(0.01), "{imp:?}");
    }

    #[test]
    fn top_features_orders_descending() {
        let idx = top_features(&[0.1, 0.5, 0.3], 2);
        assert_eq!(idx, vec![1, 2]);
        assert_eq!(top_features(&[0.1], 5), vec![0]);
        assert!(top_features(&[], 3).is_empty());
    }

    #[test]
    fn importance_is_near_zero_for_unused_features() {
        let d = informative_dataset(4);
        let mut rf = RandomForest::default();
        rf.fit(&d, 5);
        let imp = permutation_importance(&rf, &d, 3, 6);
        assert!(imp[1].abs() < 0.15, "{imp:?}");
        assert!(imp[2].abs() < 0.15, "{imp:?}");
    }

    #[test]
    #[should_panic(expected = "at least one repeat")]
    fn zero_repeats_rejected() {
        let d = informative_dataset(7);
        let mut rf = RandomForest::default();
        rf.fit(&d, 1);
        permutation_importance(&rf, &d, 0, 1);
    }
}
