//! Bitwise parity between the batched structure-of-arrays kernels
//! (`rows_satisfy` / `rows_score`) and their per-row counterparts, for
//! every signature-store backend.
//!
//! The batch kernels are the stage-1 hot path: the engine's phase-A
//! sweep prunes and scores whole candidate ranges through them, and
//! answers stay bit-identical across executors only if a batched
//! verdict can never diverge from the per-row call it replaces. The
//! per-row method is the `chunk = 1` case by construction; this suite
//! pins the SoA overrides (f32 chunks for Dense, presence-bitset words
//! for Compact/CompactWide) to it over random matrices, random query
//! rows, and random subranges, plus the chunk-boundary edge cases —
//! empty range, unaligned tail, full matrix.

use proptest::prelude::*;
use psi_graph::builder::graph_from;
use psi_graph::Graph;
use psi_signature::{default_scale, matrix_signatures, SigStore, SigStoreKind, SignatureStore};

const KINDS: [SigStoreKind; 3] = [
    SigStoreKind::Dense,
    SigStoreKind::Compact,
    SigStoreKind::CompactWide,
];

fn random_graph() -> impl Strategy<Value = Graph> {
    (2usize..=48, any::<u64>()).prop_map(|(n, seed)| {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let labels: Vec<u16> = (0..n).map(|_| rng.gen_range(0..4)).collect();
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.gen_bool(0.2) {
                    edges.push((u, v));
                }
            }
        }
        graph_from(&labels, &edges).expect("valid")
    })
}

/// Assert batch ≡ per-row over `range` for one store. Scores compare
/// by bit pattern, not tolerance: the kernels must preserve the exact
/// accumulation order of the scalar path.
fn assert_parity(store: &SigStore, range: std::ops::Range<u32>, query_row: &[f32]) {
    let mut satisfy = vec![false; range.len()];
    let mut score = vec![0.0f32; range.len()];
    store.rows_satisfy(range.clone(), query_row, &mut satisfy);
    store.rows_score(range.clone(), query_row, &mut score);
    for (i, n) in range.enumerate() {
        assert_eq!(
            satisfy[i],
            store.row_satisfies(n, query_row),
            "{} rows_satisfy diverges at node {n}",
            store.kind().name()
        );
        assert_eq!(
            score[i].to_bits(),
            store.row_score(n, query_row).to_bits(),
            "{} rows_score diverges at node {n}: {} vs {}",
            store.kind().name(),
            score[i],
            store.row_score(n, query_row)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random subranges of a random signature matrix, queried with a
    /// real pivot row: batched and per-row verdicts/scores are
    /// bitwise equal on all three backends.
    #[test]
    fn batch_matches_per_row_on_random_ranges(
        g in random_graph(),
        pivot_sel in any::<u64>(),
        lo_sel in any::<u64>(),
        hi_sel in any::<u64>(),
    ) {
        let depth = 2;
        let m = matrix_signatures(&g, depth);
        let n = m.node_count() as u32;
        let pivot = (pivot_sel % n as u64) as u32;
        let query_row = m.row(pivot).to_vec();
        let a = (lo_sel % (n as u64 + 1)) as u32;
        let b = (hi_sel % (n as u64 + 1)) as u32;
        let range = a.min(b)..a.max(b);
        for kind in KINDS {
            let store = SigStore::from_matrix(m.clone(), kind, default_scale(depth));
            assert_parity(&store, range.clone(), &query_row);
        }
    }

    /// A query row scaled off the stored values exercises both sides
    /// of the satisfaction epsilon and the compact stores' quantized
    /// tail rule.
    #[test]
    fn batch_matches_per_row_under_scaled_query_rows(
        g in random_graph(),
        pivot_sel in any::<u64>(),
        scale in 0.25f32..4.0,
    ) {
        let depth = 2;
        let m = matrix_signatures(&g, depth);
        let n = m.node_count() as u32;
        let pivot = (pivot_sel % n as u64) as u32;
        let query_row: Vec<f32> = m.row(pivot).iter().map(|&v| v * scale).collect();
        for kind in KINDS {
            let store = SigStore::from_matrix(m.clone(), kind, default_scale(depth));
            assert_parity(&store, 0..n, &query_row);
        }
    }
}

/// A deterministic 67-node graph: 67 is prime, so the full range is
/// unaligned for both the dense chunk width (8) and the bitset word
/// width (64), forcing every kernel's tail path.
fn tail_heavy_store(kind: SigStoreKind) -> (SigStore, Vec<f32>) {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(97);
    let n = 67usize;
    let labels: Vec<u16> = (0..n).map(|_| rng.gen_range(0..5)).collect();
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.gen_bool(0.15) {
                edges.push((u, v));
            }
        }
    }
    let g = graph_from(&labels, &edges).expect("valid");
    let m = matrix_signatures(&g, 2);
    let query_row = m.row(13).to_vec();
    (SigStore::from_matrix(m, kind, default_scale(2)), query_row)
}

#[test]
fn empty_range_is_a_no_op() {
    for kind in KINDS {
        let (store, row) = tail_heavy_store(kind);
        let mut satisfy: Vec<bool> = Vec::new();
        let mut score: Vec<f32> = Vec::new();
        store.rows_satisfy(5..5, &row, &mut satisfy);
        store.rows_score(5..5, &row, &mut score);
        assert!(satisfy.is_empty() && score.is_empty());
    }
}

#[test]
fn unaligned_tails_match_per_row() {
    for kind in KINDS {
        let (store, row) = tail_heavy_store(kind);
        // Ranges chosen to straddle chunk and word boundaries: inside
        // one word, across one boundary, and a tail shorter than any
        // chunk width.
        for range in [0..7u32, 3..9, 6..67, 60..67, 63..65, 66..67] {
            assert_parity(&store, range, &row);
        }
    }
}

#[test]
fn full_matrix_matches_per_row() {
    for kind in KINDS {
        let (store, row) = tail_heavy_store(kind);
        let n = store.node_count() as u32;
        assert_parity(&store, 0..n, &row);
    }
}
