//! Property tests for neighborhood signatures.

use proptest::prelude::*;
use psi_graph::builder::graph_from;
use psi_graph::Graph;
use psi_signature::{
    exploration_signatures, matrix_signatures, satisfiability_score, satisfies,
};

fn random_graph() -> impl Strategy<Value = Graph> {
    (2usize..=20, any::<u64>()).prop_map(|(n, seed)| {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let labels: Vec<u16> = (0..n).map(|_| rng.gen_range(0..5)).collect();
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.gen_bool(0.25) {
                    edges.push((u, v));
                }
            }
        }
        graph_from(&labels, &edges).expect("valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Depth 0 is the one-hot label row for both methods.
    #[test]
    fn depth_zero_is_one_hot(g in random_graph()) {
        let e = exploration_signatures(&g, 0);
        let m = matrix_signatures(&g, 0);
        for n in g.node_ids() {
            for l in 0..g.label_count() {
                let expected = if g.label(n) as usize == l { 1.0 } else { 0.0 };
                prop_assert_eq!(e.row(n)[l], expected);
                prop_assert_eq!(m.row(n)[l], expected);
            }
        }
    }

    /// Depth 1 coincides across methods (no multi-paths of length ≤ 1).
    #[test]
    fn methods_agree_at_depth_one(g in random_graph()) {
        let e = exploration_signatures(&g, 1);
        let m = matrix_signatures(&g, 1);
        for n in g.node_ids() {
            for l in 0..g.label_count() {
                prop_assert!((e.row(n)[l] - m.row(n)[l]).abs() < 1e-5);
            }
        }
    }

    /// The matrix method (walk counting) pointwise dominates the
    /// exploration method (shortest-path counting) at any depth.
    #[test]
    fn matrix_dominates_exploration(g in random_graph(), d in 0u32..=3) {
        let e = exploration_signatures(&g, d);
        let m = matrix_signatures(&g, d);
        for n in g.node_ids() {
            for l in 0..g.label_count() {
                prop_assert!(m.row(n)[l] >= e.row(n)[l] - 1e-4);
            }
        }
    }

    /// Signature weights are monotone in depth for both methods.
    #[test]
    fn weights_grow_with_depth(g in random_graph()) {
        let m1 = matrix_signatures(&g, 1);
        let m2 = matrix_signatures(&g, 2);
        let e1 = exploration_signatures(&g, 1);
        let e2 = exploration_signatures(&g, 2);
        for n in g.node_ids() {
            for l in 0..g.label_count() {
                prop_assert!(m2.row(n)[l] >= m1.row(n)[l] - 1e-5);
                prop_assert!(e2.row(n)[l] >= e1.row(n)[l] - 1e-5);
            }
        }
    }

    /// Satisfaction is reflexive and transitive on real signature rows.
    #[test]
    fn satisfaction_reflexive_and_transitive(g in random_graph()) {
        let m = matrix_signatures(&g, 2);
        for n in g.node_ids() {
            prop_assert!(satisfies(m.row(n), m.row(n)));
        }
        // Transitivity on a sampled triple.
        let n = g.node_count() as u32;
        if n >= 3 {
            let (a, b, c) = (m.row(0), m.row(n / 2), m.row(n - 1));
            if satisfies(a, b) && satisfies(b, c) {
                prop_assert!(satisfies(a, c));
            }
        }
    }

    /// A node's own signature satisfies the signature of the same node
    /// inside any induced subgraph containing it (subgraph weights are
    /// never larger — the foundation of Prop 3.2's safety).
    #[test]
    fn induced_subgraph_signatures_are_dominated(g in random_graph(), seed in any::<u64>()) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let n = g.node_count();
        // Sample a node subset containing node 0.
        let nodes: Vec<u32> = (0..n as u32)
            .filter(|&v| v == 0 || rng.gen_bool(0.5))
            .collect();
        let sub = psi_graph::algo::induced_subgraph(&g, &nodes);
        let gm = matrix_signatures(&g, 2);
        let sm = matrix_signatures(&sub, 2);
        for (si, &orig) in nodes.iter().enumerate() {
            for l in 0..sub.label_count() {
                prop_assert!(
                    gm.row(orig).get(l).copied().unwrap_or(0.0) >= sm.row(si as u32)[l] - 1e-4,
                    "node {orig} label {l}"
                );
            }
        }
    }

    /// Satisfiability scores are non-negative and monotone under
    /// pointwise candidate growth.
    #[test]
    fn scores_behave(g in random_graph()) {
        let m = matrix_signatures(&g, 2);
        for n in g.node_ids() {
            let s = satisfiability_score(m.row(n), m.row(n));
            prop_assert!(s >= 0.0);
            // Self-score is at least 1 when the row is non-zero.
            if m.row(n).iter().any(|&w| w > 0.0) {
                prop_assert!(s >= 1.0 - 1e-6);
            }
        }
    }
}
