//! Matrix-based signature computation (the paper's optimization, §3.1).
//!
//! Instead of one BFS per node, run `D` global passes of the recurrence
//!
//! ```text
//! NSⁱ(n) = NSⁱ⁻¹(n) + ½ · Σ_{m ∈ adj(n)} NSⁱ⁻¹(m)
//! ```
//!
//! over the dense `|V| × |L|` signature matrix, i.e. `D` products of the
//! (implicit, CSR) adjacency matrix with the signature matrix. Cost is
//! `O(|N|·|L|·d·D)` — linear in average degree rather than exponential
//! in depth. As the paper notes, weights differ from the exploration
//! method (a node reachable along several paths is counted once per
//! path, with the weight of each path length), but they measure the same
//! notion of label proximity and are what SmartPSI actually deploys.

use psi_graph::Graph;
use psi_obs::{timed, Counter, Phase, Recorder};

use crate::SignatureMatrix;

/// [`matrix_signatures`] with observability: the whole build runs
/// inside a [`Phase::Signature`] span and the number of computed rows
/// feeds [`Counter::SignatureRows`].
pub fn matrix_signatures_recorded(g: &Graph, depth: u32, rec: &dyn Recorder) -> SignatureMatrix {
    let sigs = timed(rec, Phase::Signature, || matrix_signatures(g, depth));
    rec.add(Counter::SignatureRows, g.node_count() as u64);
    sigs
}

/// Compute all node signatures by `depth` passes of the matrix
/// recurrence.
pub fn matrix_signatures(g: &Graph, depth: u32) -> SignatureMatrix {
    let n = g.node_count();
    let l = g.label_count();
    let mut cur = SignatureMatrix::zeroed(n, l);
    if n == 0 || l == 0 {
        return cur;
    }
    // NS⁰: one-hot label rows.
    for v in 0..n {
        cur.row_mut(v as u32)[g.label(v as u32) as usize] = 1.0;
    }
    // Every `next` row is fully overwritten below (copy_from_slice then
    // accumulate), so a zeroed scratch matrix suffices — cloning `cur`
    // would copy |V|·|L| floats only to discard them.
    let mut next = SignatureMatrix::zeroed(n, l);
    for _ in 0..depth {
        for v in 0..n as u32 {
            // next[v] = cur[v] + 0.5 * sum_{m in adj(v)} cur[m]
            let out = next.row_mut(v);
            out.copy_from_slice(cur.row(v));
            // `cur` and `next` are distinct matrices, so reading `cur`
            // rows while writing `next.row_mut(v)` never aliases.
            //
            // The exact shape of this inner loop — neighbors in
            // ascending id order, `+= 0.5 * s` element-wise — is a
            // contract: `IncrementalSignatures` replays it verbatim so
            // incrementally repaired rows are bit-identical to a
            // from-scratch build (see incremental.rs).
            for &m in g.neighbors(v) {
                let src = cur.row(m);
                for (o, &s) in out.iter_mut().zip(src) {
                    *o += 0.5 * s;
                }
            }
        }
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_graph::builder::graph_from;

    /// The worked example from §3.1: query of Figure 2(a).
    /// Nodes v0(A) v1(B) v2(B) v3(C) v4(D); edges v0-v1, v1-v2, v1-v3,
    /// v2-v3, v3-v4. Expected NS² row for v1: [1, 3, 5/4, 1/4].
    ///
    /// Note: the paper prints NS²(v3) = [1/4, 13/4, 2, 1], which is
    /// inconsistent with its own recurrence applied to its own NS¹
    /// (a typo in the paper); the recurrence yields [1/4, 5/2, 7/4, 1],
    /// which is what we assert. All other rows match the paper exactly.
    #[test]
    fn paper_figure2_example() {
        // labels: A=0 B=1 C=2 D=3
        let g = graph_from(&[0, 1, 1, 2, 3], &[(0, 1), (1, 2), (1, 3), (2, 3), (3, 4)]).unwrap();
        let sig = matrix_signatures(&g, 2);
        let expect = [
            [1.25, 1.25, 0.25, 0.0], // v0
            [1.0, 3.0, 1.25, 0.25],  // v1
            [0.25, 2.75, 1.25, 0.25], // v2
            [0.25, 2.5, 1.75, 1.0],  // v3 (see doc comment re paper typo)
            [0.0, 0.5, 1.0, 1.25],   // v4
        ];
        for (v, row) in expect.iter().enumerate() {
            for (l, &w) in row.iter().enumerate() {
                assert!(
                    (sig.row(v as u32)[l] - w).abs() < 1e-6,
                    "NS²[v{v}][{l}] = {} expected {w}",
                    sig.row(v as u32)[l]
                );
            }
        }
    }

    /// Intermediate NS¹ of the same example, also printed in the paper.
    #[test]
    fn paper_figure2_first_iteration() {
        let g = graph_from(&[0, 1, 1, 2, 3], &[(0, 1), (1, 2), (1, 3), (2, 3), (3, 4)]).unwrap();
        let sig = matrix_signatures(&g, 1);
        let expect = [
            [1.0, 0.5, 0.0, 0.0],
            [0.5, 1.5, 0.5, 0.0],
            [0.0, 1.5, 0.5, 0.0],
            [0.0, 1.0, 1.0, 0.5],
            [0.0, 0.0, 0.5, 1.0],
        ];
        for (v, row) in expect.iter().enumerate() {
            for (l, &w) in row.iter().enumerate() {
                assert!(
                    (sig.row(v as u32)[l] - w).abs() < 1e-6,
                    "NS¹[v{v}][{l}] = {} expected {w}",
                    sig.row(v as u32)[l]
                );
            }
        }
    }

    #[test]
    fn depth_zero_is_one_hot() {
        let g = graph_from(&[2, 0], &[(0, 1)]).unwrap();
        let sig = matrix_signatures(&g, 0);
        assert_eq!(sig.row(0), &[0.0, 0.0, 1.0]);
        assert_eq!(sig.row(1), &[1.0, 0.0, 0.0]);
    }

    #[test]
    fn matches_exploration_on_trees() {
        // On a tree there is exactly one path between any two nodes, so
        // within depth D both methods see each node once... but the
        // matrix method also walks back-and-forth paths (v->u->v), so
        // equality only holds for D=1.
        let g = graph_from(&[0, 1, 2, 1], &[(0, 1), (0, 2), (2, 3)]).unwrap();
        let me = matrix_signatures(&g, 1);
        let ex = crate::exploration_signatures(&g, 1);
        for v in 0..4u32 {
            for l in 0..3 {
                assert!((me.row(v)[l] - ex.row(v)[l]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn matrix_dominates_exploration_pointwise() {
        // The matrix method counts every walk, the exploration method
        // only shortest paths once — so matrix weights are >= explore
        // weights everywhere. (This is why Prop. 3.2 remains safe when
        // both sides use the same method.)
        let g = graph_from(
            &[0, 1, 1, 2, 0],
            &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (3, 4)],
        )
        .unwrap();
        let me = matrix_signatures(&g, 3);
        let ex = crate::exploration_signatures(&g, 3);
        for v in 0..5u32 {
            for l in 0..3 {
                assert!(me.row(v)[l] >= ex.row(v)[l] - 1e-6);
            }
        }
    }

    #[test]
    fn empty_graph() {
        let g = psi_graph::GraphBuilder::new().build().unwrap();
        let sig = matrix_signatures(&g, 2);
        assert_eq!(sig.node_count(), 0);
    }

    #[test]
    fn isolated_node_keeps_identity_row() {
        let mut b = psi_graph::GraphBuilder::new();
        b.add_node(1);
        let g = b.build().unwrap();
        let sig = matrix_signatures(&g, 5);
        assert_eq!(sig.row(0), &[0.0, 1.0]);
    }
}
