//! Signature keys: hashable encodings of signature rows for the
//! prediction cache (§4.2.3).
//!
//! "The cache module stores the node signature of already evaluated
//! nodes. […] nodes having the same neighborhood signature are deemed
//! similar since they have similar graph structures around them."
//!
//! Two encodings are provided:
//!
//! * [`SignatureKey::exact`] — bit-exact: only nodes with *identical*
//!   signatures share a key (the paper's semantics, always safe),
//! * [`SignatureKey::quantized`] — weights bucketed to a grid, so
//!   near-identical neighborhoods share cache entries. Coarser keys
//!   raise the hit rate at the cost of more (recoverable) method/plan
//!   mispredictions; SmartPSI stays exact because cached decisions
//!   only choose *how* to evaluate, never the verdict.

/// Hashable encoding of one signature row.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SignatureKey(Vec<u32>);

impl SignatureKey {
    /// Bit-exact key: equal iff the rows are identical `f32`-wise.
    pub fn exact(row: &[f32]) -> Self {
        Self(row.iter().map(|f| f.to_bits()).collect())
    }

    /// Quantized key: weights are bucketed to multiples of `1 /
    /// resolution`. `resolution = 4` buckets at quarter steps (the
    /// natural grid of depth-2 signatures, whose weights are multiples
    /// of 0.25).
    ///
    /// # Panics
    /// Panics if `resolution == 0`.
    pub fn quantized(row: &[f32], resolution: u32) -> Self {
        assert!(resolution > 0, "resolution must be positive");
        let r = resolution as f32;
        Self(
            row.iter()
                .map(|&w| {
                    let b = (w * r).round();
                    // Saturate rather than wrap for absurd weights.
                    if b >= u32::MAX as f32 {
                        u32::MAX
                    } else {
                        b.max(0.0) as u32
                    }
                })
                .collect(),
        )
    }

    /// Length of the encoded row.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the key is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_distinguishes_bit_level() {
        let a = SignatureKey::exact(&[1.0, 0.5]);
        let b = SignatureKey::exact(&[1.0, 0.5]);
        let c = SignatureKey::exact(&[1.0, 0.5000001]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn quantized_merges_nearby() {
        let a = SignatureKey::quantized(&[1.0, 0.52], 4);
        let b = SignatureKey::quantized(&[1.05, 0.48], 4);
        assert_eq!(a, b, "both round to [4, 2] at quarter resolution");
        let c = SignatureKey::quantized(&[1.4, 0.5], 4);
        assert_ne!(a, c);
    }

    #[test]
    fn finer_resolution_distinguishes_more() {
        let a = SignatureKey::quantized(&[0.52], 100);
        let b = SignatureKey::quantized(&[0.48], 100);
        assert_ne!(a, b);
    }

    #[test]
    fn handles_extremes() {
        let k = SignatureKey::quantized(&[f32::MAX, 0.0, -1.0], 4);
        assert_eq!(k.len(), 3);
        assert!(!k.is_empty());
        let empty = SignatureKey::exact(&[]);
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "resolution")]
    fn zero_resolution_rejected() {
        SignatureKey::quantized(&[1.0], 0);
    }

    #[test]
    fn usable_as_hashmap_key() {
        let mut m = std::collections::HashMap::new();
        m.insert(SignatureKey::exact(&[1.0, 2.0]), "x");
        assert_eq!(m.get(&SignatureKey::exact(&[1.0, 2.0])), Some(&"x"));
        assert_eq!(m.get(&SignatureKey::exact(&[2.0, 1.0])), None);
    }
}
