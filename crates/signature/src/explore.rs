//! Exploration-based signature computation (the traditional approach,
//! after Khan et al.'s proximity-pattern label propagation).
//!
//! For every node `u` a depth-bounded BFS counts, per label `l` and
//! distance `d ≤ D`, the number of nodes with label `l` whose *shortest*
//! distance from `u` is `d`; the weight of `l` is
//! `Σ_d 2^-d · C_u(l, d)`. This is exact shortest-distance semantics but
//! costs `O(|N|·|L|·d^D)` overall — the expense Figure 8 of the paper
//! demonstrates and the matrix method removes.

use psi_graph::{Graph, NodeId};

use crate::SignatureMatrix;

/// Compute all node signatures by per-node bounded BFS.
pub fn exploration_signatures(g: &Graph, depth: u32) -> SignatureMatrix {
    let n = g.node_count();
    let l = g.label_count();
    let mut out = SignatureMatrix::zeroed(n, l);
    if n == 0 || l == 0 {
        return out;
    }

    // Generation-stamped visited array: avoids a clear per BFS.
    let mut visited_gen = vec![0u32; n];
    let mut frontier: Vec<NodeId> = Vec::new();
    let mut next: Vec<NodeId> = Vec::new();

    for src in 0..n as NodeId {
        let gen = src + 1; // unique per-BFS generation stamp
        let row = {
            // Collect into a local accumulation buffer to keep borrowck
            // simple; rows are short (≤ |L|).
            let mut acc = vec![0.0f32; l];
            visited_gen[src as usize] = gen;
            acc[g.label(src) as usize] += 1.0; // distance 0, weight 2^0
            frontier.clear();
            frontier.push(src);
            let mut w = 1.0f32;
            for _ in 0..depth {
                w *= 0.5;
                next.clear();
                for &u in &frontier {
                    for &v in g.neighbors(u) {
                        if visited_gen[v as usize] != gen {
                            visited_gen[v as usize] = gen;
                            acc[g.label(v) as usize] += w;
                            next.push(v);
                        }
                    }
                }
                std::mem::swap(&mut frontier, &mut next);
                if frontier.is_empty() {
                    break;
                }
            }
            acc
        };
        out.row_mut(src).copy_from_slice(&row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_graph::builder::graph_from;

    /// The worked example from §3.1 of the paper: graph of Figure 1(b).
    /// Nodes: u1(A) u2(B) u3(C) u4(C) u5(B) u6(A); edges u1-u2, u1-u3,
    /// u1-u4, u1-u5, u2-u3, u2-u4, u4-u5, u3-u5, u5-u6.
    /// Expected: NS²(u1) = {A: 1.25, B: 1, C: 1}.
    #[test]
    fn paper_figure1_example() {
        // label ids: A=0, B=1, C=2
        let g = graph_from(
            &[0, 1, 2, 2, 1, 0],
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (1, 2),
                (1, 3),
                (3, 4),
                (2, 4),
                (4, 5),
            ],
        )
        .unwrap();
        let sig = exploration_signatures(&g, 2);
        let u1 = sig.row(0);
        assert!((u1[0] - 1.25).abs() < 1e-6, "A weight: {}", u1[0]);
        assert!((u1[1] - 1.0).abs() < 1e-6, "B weight: {}", u1[1]);
        assert!((u1[2] - 1.0).abs() < 1e-6, "C weight: {}", u1[2]);
    }

    #[test]
    fn depth_zero_is_one_hot_label() {
        let g = graph_from(&[0, 1, 1], &[(0, 1), (1, 2)]).unwrap();
        let sig = exploration_signatures(&g, 0);
        assert_eq!(sig.row(0), &[1.0, 0.0]);
        assert_eq!(sig.row(1), &[0.0, 1.0]);
        assert_eq!(sig.row(2), &[0.0, 1.0]);
    }

    #[test]
    fn path_graph_distances() {
        // 0-1-2-3, labels all distinct.
        let g = graph_from(&[0, 1, 2, 3], &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let sig = exploration_signatures(&g, 2);
        // node 0: itself label0=1, label1 at d=1 (0.5), label2 at d=2 (0.25),
        // label3 unreachable within D=2.
        assert_eq!(sig.row(0), &[1.0, 0.5, 0.25, 0.0]);
        // node 1 sees 0 and 2 at d=1, 3 at d=2.
        assert_eq!(sig.row(1), &[0.5, 1.0, 0.5, 0.25]);
    }

    #[test]
    fn shortest_path_counts_each_node_once() {
        // Diamond: 0-1, 0-2, 1-3, 2-3. Node 3 reachable from 0 via two
        // paths but must contribute 2^-2 only once.
        let g = graph_from(&[0, 1, 1, 2], &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let sig = exploration_signatures(&g, 2);
        assert_eq!(sig.row(0), &[1.0, 1.0, 0.25]);
    }

    #[test]
    fn disconnected_component_contributes_nothing() {
        let g = graph_from(&[0, 1, 1], &[(0, 1)]).unwrap();
        let sig = exploration_signatures(&g, 3);
        assert_eq!(sig.row(0), &[1.0, 0.5]);
        assert_eq!(sig.row(2), &[0.0, 1.0]);
    }

    #[test]
    fn empty_graph() {
        let g = psi_graph::GraphBuilder::new().build().unwrap();
        let sig = exploration_signatures(&g, 2);
        assert_eq!(sig.node_count(), 0);
    }

    #[test]
    fn deep_propagation_converges_geometrically() {
        // Long path: far labels decay as 2^-d.
        let labels: Vec<u16> = (0..8).map(|i| i as u16).collect();
        let edges: Vec<(u32, u32)> = (0..7).map(|i| (i, i + 1)).collect();
        let g = graph_from(&labels, &edges).unwrap();
        let sig = exploration_signatures(&g, 7);
        for d in 0..8usize {
            assert!((sig.row(0)[d] - 0.5f32.powi(d as i32)).abs() < 1e-6);
        }
    }
}
