//! Incremental signature maintenance for evolving graphs.
//!
//! SmartPSI precomputes all signatures at load time; for evolving
//! graphs (the incremental frequent-subgraph-mining setting of
//! Abdelhamid et al., TKDE 2017, which the paper cites) recomputing
//! `|V| × |L|` from scratch per edge is wasteful. Inserting edge
//! `(u, v)` only changes the signatures of nodes within distance `D`
//! of `u` or `v`, because the matrix signature is
//! `NS^D = (I + A/2)^D · NS⁰` — row `n` depends only on walks of
//! length ≤ D from `n`.
//!
//! [`IncrementalSignatures`] keeps a [`DynamicGraph`] and its
//! signature matrix in sync, recomputing exactly the affected rows via
//! local `(I + A/2)`-vector products.

use psi_graph::dynamic::DynamicGraph;
use psi_graph::hash::FxHashMap;
use psi_graph::{GraphError, LabelId, NodeId};

use crate::SignatureMatrix;

/// A dynamic graph with continuously-maintained matrix signatures.
#[derive(Debug, Clone)]
pub struct IncrementalSignatures {
    g: DynamicGraph,
    sigs: SignatureMatrix,
    depth: u32,
    label_capacity: usize,
}

impl IncrementalSignatures {
    /// Wrap a dynamic graph, computing initial signatures. The label
    /// space is fixed at `label_capacity` columns (labels ≥ capacity
    /// are rejected later), so rows never need resizing.
    pub fn new(g: DynamicGraph, depth: u32, label_capacity: usize) -> Self {
        let snapshot = g.snapshot();
        assert!(
            snapshot.label_count() <= label_capacity,
            "label_capacity too small for existing labels"
        );
        // Compute via the batch method on a capacity-padded matrix.
        let batch = crate::matrix_signatures(&snapshot, depth);
        let mut sigs = SignatureMatrix::zeroed(g.node_count(), label_capacity);
        for n in 0..g.node_count() as NodeId {
            let row = batch.row(n);
            sigs.row_mut(n)[..row.len()].copy_from_slice(row);
        }
        Self {
            g,
            sigs,
            depth,
            label_capacity,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DynamicGraph {
        &self.g
    }

    /// The maintained signatures.
    pub fn signatures(&self) -> &SignatureMatrix {
        &self.sigs
    }

    /// Propagation depth.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Add a node; its signature is its one-hot label row (no edges
    /// yet, so no other row changes).
    pub fn add_node(&mut self, label: LabelId) -> NodeId {
        assert!(
            (label as usize) < self.label_capacity,
            "label {label} exceeds the fixed label capacity {}",
            self.label_capacity
        );
        let id = self.g.add_node(label);
        // Grow the matrix by one zero row, then set the one-hot.
        let mut grown = SignatureMatrix::zeroed(self.g.node_count(), self.label_capacity);
        grown.as_flat_mut()[..self.sigs.as_flat().len()].copy_from_slice(self.sigs.as_flat());
        self.sigs = grown;
        self.sigs.row_mut(id)[label as usize] = 1.0;
        id
    }

    /// Add an edge and repair all affected signature rows. Returns
    /// `Ok(false)` (and changes nothing) when the edge already existed.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, label: LabelId) -> Result<bool, GraphError> {
        if !self.g.add_labeled_edge(u, v, label)? {
            return Ok(false);
        }
        // All nodes within distance D of u or v are affected.
        let affected = self.ball(&[u, v], self.depth);
        for &n in &affected {
            let row = self.recompute_row(n);
            self.sigs.row_mut(n).copy_from_slice(&row);
        }
        Ok(true)
    }

    /// Nodes within `radius` hops of any of `sources`.
    fn ball(&self, sources: &[NodeId], radius: u32) -> Vec<NodeId> {
        let mut dist: FxHashMap<NodeId, u32> = FxHashMap::default();
        let mut queue = std::collections::VecDeque::new();
        for &s in sources {
            dist.insert(s, 0);
            queue.push_back(s);
        }
        while let Some(x) = queue.pop_front() {
            let d = dist[&x];
            if d == radius {
                continue;
            }
            for &(y, _) in self.g.neighbors(x) {
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(y) {
                    e.insert(d + 1);
                    queue.push_back(y);
                }
            }
        }
        dist.into_keys().collect()
    }

    /// Exact recomputation of one row: apply `(I + A/2)` to `e_n`
    /// `depth` times (a local walk-weight vector), then aggregate by
    /// label.
    fn recompute_row(&self, n: NodeId) -> Vec<f32> {
        let mut x: FxHashMap<NodeId, f32> = FxHashMap::default();
        x.insert(n, 1.0);
        for _ in 0..self.depth {
            let mut next = x.clone();
            for (&node, &w) in &x {
                for &(nb, _) in self.g.neighbors(node) {
                    *next.entry(nb).or_insert(0.0) += 0.5 * w;
                }
            }
            x = next;
        }
        let mut row = vec![0.0f32; self.label_capacity];
        for (node, w) in x {
            row[self.g.label(node) as usize] += w;
        }
        row
    }
}

impl SignatureMatrix {
    /// Mutable access to the flat buffer (crate-internal support for
    /// the incremental maintainer).
    pub(crate) fn as_flat_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The incremental matrix must always equal a from-scratch batch
    /// recomputation (padded to the same capacity).
    fn assert_matches_batch(inc: &IncrementalSignatures) {
        let snapshot = inc.graph().snapshot();
        let batch = crate::matrix_signatures(&snapshot, inc.depth());
        for n in 0..snapshot.node_count() as NodeId {
            let brow = batch.row(n);
            let irow = inc.signatures().row(n);
            for l in 0..irow.len() {
                let b = brow.get(l).copied().unwrap_or(0.0);
                assert!(
                    (irow[l] - b).abs() < 1e-4,
                    "node {n} label {l}: incremental {} vs batch {b}",
                    irow[l]
                );
            }
        }
    }

    #[test]
    fn starts_in_sync() {
        let mut g = DynamicGraph::new();
        for l in [0, 1, 1, 2] {
            g.add_node(l);
        }
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        let inc = IncrementalSignatures::new(g, 2, 4);
        assert_matches_batch(&inc);
    }

    #[test]
    fn edge_insertions_stay_in_sync() {
        let mut g = DynamicGraph::new();
        for i in 0..10 {
            g.add_node((i % 3) as u16);
        }
        let mut inc = IncrementalSignatures::new(g, 2, 3);
        for (u, v) in [(0u32, 1u32), (1, 2), (2, 3), (3, 4), (0, 4), (5, 6), (6, 7), (1, 5), (8, 9), (4, 8)] {
            assert!(inc.add_edge(u, v, 0).unwrap());
            assert_matches_batch(&inc);
        }
    }

    #[test]
    fn duplicate_edge_is_noop() {
        let mut g = DynamicGraph::new();
        g.add_node(0);
        g.add_node(1);
        g.add_edge(0, 1).unwrap();
        let mut inc = IncrementalSignatures::new(g, 2, 2);
        let before = inc.signatures().clone();
        assert!(!inc.add_edge(0, 1, 0).unwrap());
        assert_eq!(inc.signatures(), &before);
    }

    #[test]
    fn node_additions_grow_matrix() {
        let mut g = DynamicGraph::new();
        g.add_node(0);
        let mut inc = IncrementalSignatures::new(g, 2, 3);
        let b = inc.add_node(2);
        assert_eq!(inc.signatures().node_count(), 2);
        assert_eq!(inc.signatures().row(b), &[0.0, 0.0, 1.0]);
        inc.add_edge(0, b, 0).unwrap();
        assert_matches_batch(&inc);
    }

    #[test]
    fn deep_propagation_repairs_the_whole_ball() {
        // A long path; adding the closing edge changes rows far away
        // only within depth D=3.
        let mut g = DynamicGraph::new();
        for i in 0..8 {
            g.add_node((i % 2) as u16);
        }
        for i in 0..7u32 {
            g.add_edge(i, i + 1).unwrap();
        }
        let mut inc = IncrementalSignatures::new(g, 3, 2);
        inc.add_edge(0, 7, 0).unwrap();
        assert_matches_batch(&inc);
    }

    #[test]
    #[should_panic(expected = "label_capacity too small")]
    fn capacity_too_small_rejected() {
        let mut g = DynamicGraph::new();
        g.add_node(5);
        IncrementalSignatures::new(g, 2, 3);
    }

    #[test]
    #[should_panic(expected = "exceeds the fixed label capacity")]
    fn out_of_capacity_label_rejected() {
        let g = DynamicGraph::new();
        let mut inc = IncrementalSignatures::new(g, 2, 2);
        inc.add_node(2);
    }

    #[test]
    fn random_evolution_stays_in_sync() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let mut g = DynamicGraph::new();
        for _ in 0..20 {
            g.add_node(rng.gen_range(0..4));
        }
        let mut inc = IncrementalSignatures::new(g, 2, 4);
        for _ in 0..40 {
            let u = rng.gen_range(0..inc.graph().node_count() as u32);
            let v = rng.gen_range(0..inc.graph().node_count() as u32);
            if u != v {
                let _ = inc.add_edge(u, v, 0);
            }
            if rng.gen_bool(0.2) {
                inc.add_node(rng.gen_range(0..4));
            }
        }
        assert_matches_batch(&inc);
    }
}
