//! Incremental signature maintenance for evolving graphs.
//!
//! SmartPSI precomputes all signatures at load time; for evolving
//! graphs (the incremental frequent-subgraph-mining setting of
//! Abdelhamid et al., TKDE 2017, which the paper cites) recomputing
//! `|V| × |L|` from scratch per edge is wasteful.
//! [`IncrementalSignatures`] keeps a [`DynamicGraph`] and its
//! signature matrix in sync, repairing exactly the affected rows.
//!
//! ## Which rows change (the `D−1` ball)
//!
//! The matrix signature is `NS^D = (I + A/2)^D · NS⁰`, so row `n` is a
//! sum over *walks of length ≤ D starting at `n`*. Inserting edge
//! `(u, v)` changes row `n` only if some such walk traverses the new
//! edge — which requires reaching `u` or `v` within the first `D−1`
//! steps (the walk still needs one step left to cross). Hence the
//! affected rows are exactly `dist(n, {u, v}) ≤ D−1` in the *new*
//! graph; at `D = 0` no row changes (NS⁰ is one-hot labels,
//! edge-independent). An earlier version repaired the strictly larger
//! `ball({u, v}, D)`.
//!
//! ## Bit-identical repair
//!
//! Affected rows are recomputed by replaying the *exact* batch
//! recurrence of [`crate::matrix_signatures`] on a local region: for
//! pass `i = 1..=D`, `NS^i(n)` is needed on nodes within `D−1 + (D−i)`
//! hops of the touched endpoints, so one BFS of radius `2D−1` collects
//! the region and `D` local passes rebuild it from the (known, one-hot)
//! `NS⁰`. Because every per-element operation (`out[l] += 0.5 *
//! cur[m][l]`, neighbors in ascending id order — both adjacency
//! representations are sorted) matches the batch method exactly, the
//! repaired rows are **bit-identical** to a from-scratch
//! `matrix_signatures` on the final graph, which is what lets the
//! evolving-graph engine promise answers identical to a cold engine.
//! Rows outside the `D−1` ball are untouched — and unchanged in the
//! batch result too, by the same walk argument, so bit-identity holds
//! matrix-wide.
//!
//! ## No per-edge allocation
//!
//! Region discovery and the local passes run on generation-stamped
//! dense scratch buffers owned by the maintainer (the same trick
//! `explore::exploration_signatures` uses for its per-source BFS
//! state), so a repair allocates nothing once the buffers are warm and
//! costs `O(|ball(2D−1)| · d · |L| · D)` — proportional to the region,
//! not to hash-map churn.

use psi_graph::dynamic::DynamicGraph;
use psi_graph::{GraphError, GraphUpdate, LabelId, NodeId};

use crate::store::{default_scale, CompactStore, SigStoreKind, SignatureStore};
use crate::SignatureMatrix;

/// Tally of one [`IncrementalSignatures::apply_batch`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Nodes appended (each gets a one-hot row in place).
    pub nodes_added: usize,
    /// Edges newly inserted.
    pub edges_added: usize,
    /// Edge updates that were no-ops (edge already existed).
    pub duplicate_edges: usize,
    /// Signature rows recomputed by the localized recurrence.
    pub rows_repaired: usize,
}

/// Generation-stamped dense scratch for repairs: BFS state plus two
/// row arenas for the local recurrence. A stamp equal to the current
/// generation marks a node as part of the active region, so starting a
/// new repair is `O(1)` instead of clearing hash maps per edge.
#[derive(Debug, Clone, Default)]
struct RepairScratch {
    generation: u32,
    /// `stamp[n] == generation` ⇔ `n` is in the current region.
    stamp: Vec<u32>,
    /// BFS distance from the update's endpoints (valid when stamped).
    dist: Vec<u32>,
    /// Arena row index of `n` (valid when stamped).
    slot: Vec<u32>,
    /// Region nodes in BFS order (distances are non-decreasing).
    region: Vec<NodeId>,
    /// `|region| × label_capacity` arenas for the local passes.
    cur: Vec<f32>,
    next: Vec<f32>,
}

impl RepairScratch {
    /// Open a new generation over a graph of `node_count` nodes.
    fn begin(&mut self, node_count: usize) {
        if self.stamp.len() < node_count {
            self.stamp.resize(node_count, 0);
            self.dist.resize(node_count, 0);
            self.slot.resize(node_count, 0);
        }
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // One full clear every 2³² repairs keeps stale stamps from
            // a wrapped generation out of the new region.
            self.stamp.fill(0);
            self.generation = 1;
        }
        self.region.clear();
    }
}

/// A dynamic graph with continuously-maintained matrix signatures.
#[derive(Debug, Clone)]
pub struct IncrementalSignatures {
    g: DynamicGraph,
    /// The f32 ground truth: repairs replay the batch recurrence here
    /// bit-exactly regardless of the serving backend.
    sigs: SignatureMatrix,
    depth: u32,
    label_capacity: usize,
    scratch: RepairScratch,
    /// Optional quantized serving mirror, kept in lockstep with `sigs`
    /// by the `add_node`/repair hooks. The dense matrix stays the
    /// maintenance substrate — quantizing the *recurrence* would break
    /// the bit-identity contract — so a compact deployment carries both
    /// on the maintainer and serves snapshots from the mirror.
    mirror: Option<CompactStore>,
}

impl IncrementalSignatures {
    /// Wrap a dynamic graph, computing initial signatures. The label
    /// space is fixed at `label_capacity` columns (labels ≥ capacity
    /// are rejected later), so rows never need widening; the padding
    /// columns stay exactly `0.0` through every repair.
    pub fn new(g: DynamicGraph, depth: u32, label_capacity: usize) -> Self {
        Self::with_store(g, depth, label_capacity, SigStoreKind::Dense)
    }

    /// [`IncrementalSignatures::new`] with an explicit serving backend:
    /// `Dense` keeps only the f32 matrix; a compact kind additionally
    /// maintains a quantized mirror that [`IncrementalSignatures::store`]
    /// serves from.
    pub fn with_store(g: DynamicGraph, depth: u32, label_capacity: usize, kind: SigStoreKind) -> Self {
        let snapshot = g.snapshot();
        assert!(
            snapshot.label_count() <= label_capacity,
            "label_capacity too small for existing labels"
        );
        // Compute via the batch method on a capacity-padded matrix.
        let batch = crate::matrix_signatures(&snapshot, depth);
        Self::from_padded(g, depth, label_capacity, &batch, kind)
    }

    /// Wrap a dynamic graph around an *already computed* signature
    /// matrix, skipping the batch build. The caller promises `seed`
    /// equals `matrix_signatures(&g.snapshot(), depth)` (possibly
    /// already capacity-padded with zero columns) — this is how a
    /// static deployment upgrades to an evolving one without paying the
    /// signature build twice.
    pub fn from_precomputed(
        g: DynamicGraph,
        depth: u32,
        label_capacity: usize,
        seed: &SignatureMatrix,
        kind: SigStoreKind,
    ) -> Self {
        assert_eq!(seed.node_count(), g.node_count(), "seed rows must match the graph");
        assert!(
            seed.label_count() <= label_capacity,
            "label_capacity too small for the seed matrix"
        );
        assert!(
            g.snapshot().label_count() <= label_capacity,
            "label_capacity too small for existing labels"
        );
        Self::from_padded(g, depth, label_capacity, seed, kind)
    }

    fn from_padded(
        g: DynamicGraph,
        depth: u32,
        label_capacity: usize,
        batch: &SignatureMatrix,
        kind: SigStoreKind,
    ) -> Self {
        let mut sigs = SignatureMatrix::zeroed(g.node_count(), label_capacity);
        for n in 0..g.node_count() as NodeId {
            let row = batch.row(n);
            sigs.row_mut(n)[..row.len()].copy_from_slice(row);
        }
        let mirror = match kind {
            SigStoreKind::Dense => None,
            SigStoreKind::Compact => {
                Some(CompactStore::from_matrix(&sigs, false, default_scale(depth)))
            }
            SigStoreKind::CompactWide => {
                Some(CompactStore::from_matrix(&sigs, true, default_scale(depth)))
            }
        };
        Self {
            g,
            sigs,
            depth,
            label_capacity,
            scratch: RepairScratch::default(),
            mirror,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DynamicGraph {
        &self.g
    }

    /// The maintained signatures (capacity-padded; see
    /// [`SignatureMatrix::truncated`] for trimming to a snapshot's
    /// label space).
    pub fn signatures(&self) -> &SignatureMatrix {
        &self.sigs
    }

    /// The *serving* view of the maintained rows: the quantized mirror
    /// when one is configured, otherwise the dense matrix. Snapshot
    /// publication and shard row-gather read from here, so a compact
    /// deployment never materializes dense slabs.
    pub fn store(&self) -> &dyn SignatureStore {
        match &self.mirror {
            Some(m) => m,
            None => &self.sigs,
        }
    }

    /// Which backend [`IncrementalSignatures::store`] serves.
    pub fn store_kind(&self) -> SigStoreKind {
        self.store().kind()
    }

    /// Propagation depth.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// The fixed number of label columns.
    pub fn label_capacity(&self) -> usize {
        self.label_capacity
    }

    /// Add a node; its signature is its one-hot label row (no edges
    /// yet, so no other row changes). The matrix grows by one row in
    /// place — `O(|L|)` amortized, not a full reallocation.
    pub fn add_node(&mut self, label: LabelId) -> NodeId {
        assert!(
            (label as usize) < self.label_capacity,
            "label {label} exceeds the fixed label capacity {}",
            self.label_capacity
        );
        let id = self.g.add_node(label);
        self.sigs.push_zeroed_row();
        self.sigs.row_mut(id)[label as usize] = 1.0;
        if let Some(m) = &mut self.mirror {
            m.push_row(self.sigs.row(id));
        }
        id
    }

    /// Add an edge and repair all affected signature rows (the
    /// `dist ≤ D−1` ball — see the module docs). Returns `Ok(false)`
    /// (and changes nothing) when the edge already existed.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, label: LabelId) -> Result<bool, GraphError> {
        if !self.g.add_labeled_edge(u, v, label)? {
            return Ok(false);
        }
        self.repair_from(&[u, v]);
        Ok(true)
    }

    /// Apply a whole update batch, then repair the union ball once.
    ///
    /// The batch is validated up front (endpoints in range — nodes
    /// added earlier in the same batch count — no self-loops, labels
    /// within capacity), so an `Err` leaves graph and signatures
    /// untouched. Batching amortizes the repair: `k` edges landing in
    /// overlapping neighborhoods share one region BFS and one set of
    /// local passes instead of `k`.
    pub fn apply_batch(&mut self, updates: &[GraphUpdate]) -> Result<RepairStats, GraphError> {
        self.g.validate(updates)?;
        for u in updates {
            if let GraphUpdate::AddNode { label } = *u {
                if label as usize >= self.label_capacity {
                    return Err(GraphError::LabelOutOfCapacity {
                        label,
                        capacity: self.label_capacity,
                    });
                }
            }
        }
        let mut stats = RepairStats::default();
        let mut touched: Vec<NodeId> = Vec::new();
        for u in updates {
            match *u {
                GraphUpdate::AddNode { label } => {
                    self.add_node(label);
                    stats.nodes_added += 1;
                }
                GraphUpdate::AddEdge { u, v, label } => {
                    match self.g.add_labeled_edge(u, v, label) {
                        Ok(true) => {
                            touched.push(u);
                            touched.push(v);
                            stats.edges_added += 1;
                        }
                        Ok(false) => stats.duplicate_edges += 1,
                        // Unreachable after validate(), but an error
                        // must still surface rather than be swallowed.
                        Err(e) => return Err(e),
                    }
                }
            }
        }
        stats.rows_repaired = self.repair_from(&touched);
        Ok(stats)
    }

    /// Recompute every row within `D−1` hops of `sources` by replaying
    /// the batch recurrence on the `2D−1`-hop region around them (see
    /// the module docs for both radii and the bit-identity argument).
    /// Returns the number of rows rewritten.
    fn repair_from(&mut self, sources: &[NodeId]) -> usize {
        let depth = self.depth as usize;
        if depth == 0 || sources.is_empty() {
            // NS⁰ rows are one-hot labels: edge-independent.
            return 0;
        }
        let cap = self.label_capacity;
        let affected_radius = (depth - 1) as u32;
        let region_radius = (2 * depth - 1) as u32;

        let g = &self.g;
        let s = &mut self.scratch;
        s.begin(g.node_count());
        let generation = s.generation;
        for &src in sources {
            if s.stamp[src as usize] != generation {
                s.stamp[src as usize] = generation;
                s.dist[src as usize] = 0;
                s.slot[src as usize] = s.region.len() as u32;
                s.region.push(src);
            }
        }
        // Multi-source BFS; `region` doubles as the queue, leaving the
        // nodes in non-decreasing distance order.
        let mut head = 0;
        while head < s.region.len() {
            let x = s.region[head];
            head += 1;
            let d = s.dist[x as usize];
            if d == region_radius {
                continue;
            }
            for &(y, _) in g.neighbors(x) {
                if s.stamp[y as usize] != generation {
                    s.stamp[y as usize] = generation;
                    s.dist[y as usize] = d + 1;
                    s.slot[y as usize] = s.region.len() as u32;
                    s.region.push(y);
                }
            }
        }

        // NS⁰ on the whole region: one-hot label rows.
        let rows = s.region.len();
        s.cur.clear();
        s.cur.resize(rows * cap, 0.0);
        s.next.clear();
        s.next.resize(rows * cap, 0.0);
        for (idx, &n) in s.region.iter().enumerate() {
            s.cur[idx * cap + g.label(n) as usize] = 1.0;
        }

        // Pass i rebuilds NS^i on `dist ≤ 2D−1−i`; each row reads its
        // neighbors' NS^{i−1}, which live one hop further out and were
        // rebuilt by the previous pass. The last pass covers exactly
        // the affected `D−1` ball.
        for i in 1..=depth {
            let limit = region_radius - i as u32;
            let upto = s.region.partition_point(|&n| s.dist[n as usize] <= limit);
            for idx in 0..upto {
                let n = s.region[idx];
                let out = &mut s.next[idx * cap..(idx + 1) * cap];
                out.copy_from_slice(&s.cur[idx * cap..(idx + 1) * cap]);
                for &(m, _) in g.neighbors(n) {
                    // Every neighbor of a pass-i row is within the
                    // region radius, hence stamped and slotted.
                    let ms = s.slot[m as usize] as usize;
                    let src = &s.cur[ms * cap..(ms + 1) * cap];
                    // Identical per-element update (and neighbor
                    // order) to `matrix_signatures` — the bit-identity
                    // contract.
                    for (o, &w) in out.iter_mut().zip(src) {
                        *o += 0.5 * w;
                    }
                }
            }
            std::mem::swap(&mut s.cur, &mut s.next);
        }

        let repaired = s.region.partition_point(|&n| s.dist[n as usize] <= affected_radius);
        for idx in 0..repaired {
            let n = s.region[idx];
            let row = &s.cur[idx * cap..(idx + 1) * cap];
            self.sigs.row_mut(n).copy_from_slice(row);
            if let Some(m) = &mut self.mirror {
                // Re-quantize from the repaired f32 truth so the mirror
                // is always exactly `quantize(sigs)` row-for-row.
                m.set_row(n, row);
            }
        }
        repaired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The incremental matrix must always equal a from-scratch batch
    /// recomputation (padded to the same capacity) — **bit-exactly**:
    /// the repair replays the batch recurrence op for op, so even f32
    /// rounding must agree.
    fn assert_matches_batch(inc: &IncrementalSignatures) {
        let snapshot = inc.graph().snapshot();
        let batch = crate::matrix_signatures(&snapshot, inc.depth());
        for n in 0..snapshot.node_count() as NodeId {
            let brow = batch.row(n);
            let irow = inc.signatures().row(n);
            for (l, &iv) in irow.iter().enumerate() {
                let b = brow.get(l).copied().unwrap_or(0.0);
                assert!(
                    iv.to_bits() == b.to_bits(),
                    "node {n} label {l}: incremental {iv} vs batch {b} (not bit-identical)"
                );
            }
        }
    }

    #[test]
    fn starts_in_sync() {
        let mut g = DynamicGraph::new();
        for l in [0, 1, 1, 2] {
            g.add_node(l);
        }
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        let inc = IncrementalSignatures::new(g, 2, 4);
        assert_matches_batch(&inc);
    }

    #[test]
    fn edge_insertions_stay_in_sync() {
        let mut g = DynamicGraph::new();
        for i in 0..10 {
            g.add_node((i % 3) as u16);
        }
        let mut inc = IncrementalSignatures::new(g, 2, 3);
        for (u, v) in [(0u32, 1u32), (1, 2), (2, 3), (3, 4), (0, 4), (5, 6), (6, 7), (1, 5), (8, 9), (4, 8)] {
            assert!(inc.add_edge(u, v, 0).unwrap());
            assert_matches_batch(&inc);
        }
    }

    #[test]
    fn duplicate_edge_is_noop() {
        let mut g = DynamicGraph::new();
        g.add_node(0);
        g.add_node(1);
        g.add_edge(0, 1).unwrap();
        let mut inc = IncrementalSignatures::new(g, 2, 2);
        let before = inc.signatures().clone();
        assert!(!inc.add_edge(0, 1, 0).unwrap());
        assert_eq!(inc.signatures(), &before);
    }

    #[test]
    fn node_additions_grow_matrix() {
        let mut g = DynamicGraph::new();
        g.add_node(0);
        let mut inc = IncrementalSignatures::new(g, 2, 3);
        let b = inc.add_node(2);
        assert_eq!(inc.signatures().node_count(), 2);
        assert_eq!(inc.signatures().row(b), &[0.0, 0.0, 1.0]);
        inc.add_edge(0, b, 0).unwrap();
        assert_matches_batch(&inc);
    }

    #[test]
    fn deep_propagation_repairs_the_whole_ball() {
        // A long path; adding the closing edge changes rows far away
        // only within depth D=3.
        let mut g = DynamicGraph::new();
        for i in 0..8 {
            g.add_node((i % 2) as u16);
        }
        for i in 0..7u32 {
            g.add_edge(i, i + 1).unwrap();
        }
        let mut inc = IncrementalSignatures::new(g, 3, 2);
        inc.add_edge(0, 7, 0).unwrap();
        assert_matches_batch(&inc);
    }

    #[test]
    fn depths_one_through_four_stay_in_sync() {
        // The D−1 repair radius must hold at every depth the engine
        // ships, including the D=1 edge case (only the endpoints
        // themselves change) — and D=0, where nothing changes.
        for depth in 0..=4u32 {
            let mut g = DynamicGraph::new();
            for i in 0..12 {
                g.add_node((i % 4) as u16);
            }
            for i in 0..11u32 {
                g.add_edge(i, i + 1).unwrap();
            }
            let mut inc = IncrementalSignatures::new(g, depth, 4);
            for (u, v) in [(0u32, 11u32), (2, 9), (5, 11), (0, 6), (3, 7)] {
                assert!(inc.add_edge(u, v, 0).unwrap(), "depth {depth} edge ({u},{v})");
                assert_matches_batch(&inc);
            }
        }
    }

    #[test]
    fn repair_radius_is_tight() {
        // On a path with D=2, inserting (0,1) must not rewrite rows at
        // distance ≥ 2 from the endpoints — scribble on a far row's
        // padding column and verify the repair never touches it.
        let mut g = DynamicGraph::new();
        for _ in 0..6 {
            g.add_node(0);
        }
        for i in 1..5u32 {
            g.add_edge(i, i + 1).unwrap();
        }
        let mut inc = IncrementalSignatures::new(g, 2, 2);
        // Node 4 is 3 hops from node 1 (and ∞ from 0): outside the
        // D−1 = 1 affected ball of the new edge (0,1).
        inc.sigs.row_mut(4)[1] = 42.0;
        assert!(inc.add_edge(0, 1, 0).unwrap());
        assert_eq!(inc.signatures().row(4)[1], 42.0, "far row must not be rewritten");
        // …while a row inside the ball (node 1) is repaired.
        let snapshot = inc.graph().snapshot();
        let batch = crate::matrix_signatures(&snapshot, 2);
        assert_eq!(inc.signatures().row(1)[0], batch.row(1)[0]);
    }

    #[test]
    fn streaming_10k_nodes_is_in_place_and_correct() {
        // Regression for the quadratic add_node: stream 10k nodes
        // (with a sprinkle of edges to keep repairs in the loop) and
        // verify the final matrix against a cold batch build.
        let mut g = DynamicGraph::new();
        g.add_node(0);
        let mut inc = IncrementalSignatures::new(g, 2, 4);
        for i in 1..10_000u32 {
            let id = inc.add_node((i % 4) as u16);
            if i % 97 == 0 {
                inc.add_edge(id, id - 1, 0).unwrap();
            }
        }
        assert_eq!(inc.signatures().node_count(), 10_000);
        assert_matches_batch(&inc);
    }

    #[test]
    fn batch_apply_matches_batch_and_counts() {
        let mut g = DynamicGraph::new();
        for i in 0..6 {
            g.add_node((i % 2) as u16);
        }
        g.add_edge(0, 1).unwrap();
        let mut inc = IncrementalSignatures::new(g, 2, 3);
        let stats = inc
            .apply_batch(&[
                GraphUpdate::AddNode { label: 2 },
                // Forward reference to the node added above (id 6).
                GraphUpdate::AddEdge { u: 6, v: 0, label: 0 },
                GraphUpdate::AddEdge { u: 2, v: 3, label: 0 },
                GraphUpdate::AddEdge { u: 0, v: 1, label: 0 }, // duplicate
            ])
            .unwrap();
        assert_eq!(stats.nodes_added, 1);
        assert_eq!(stats.edges_added, 2);
        assert_eq!(stats.duplicate_edges, 1);
        assert!(stats.rows_repaired > 0);
        assert_matches_batch(&inc);
    }

    #[test]
    fn erroneous_batch_is_atomic() {
        let mut g = DynamicGraph::new();
        g.add_node(0);
        g.add_node(1);
        let mut inc = IncrementalSignatures::new(g, 2, 2);
        let before_sigs = inc.signatures().clone();
        let before_edges = inc.graph().edge_count();
        for bad in [
            vec![
                GraphUpdate::AddEdge { u: 0, v: 1, label: 0 },
                GraphUpdate::AddEdge { u: 0, v: 9, label: 0 },
            ],
            vec![
                GraphUpdate::AddEdge { u: 0, v: 1, label: 0 },
                GraphUpdate::AddNode { label: 7 }, // beyond capacity 2
            ],
        ] {
            assert!(inc.apply_batch(&bad).is_err());
            assert_eq!(inc.signatures(), &before_sigs, "failed batch must not mutate");
            assert_eq!(inc.graph().edge_count(), before_edges);
        }
    }

    #[test]
    #[should_panic(expected = "label_capacity too small")]
    fn capacity_too_small_rejected() {
        let mut g = DynamicGraph::new();
        g.add_node(5);
        IncrementalSignatures::new(g, 2, 3);
    }

    #[test]
    #[should_panic(expected = "exceeds the fixed label capacity")]
    fn out_of_capacity_label_rejected() {
        let g = DynamicGraph::new();
        let mut inc = IncrementalSignatures::new(g, 2, 2);
        inc.add_node(2);
    }

    #[test]
    fn random_evolution_stays_in_sync() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let mut g = DynamicGraph::new();
        for _ in 0..20 {
            g.add_node(rng.gen_range(0..4));
        }
        let mut inc = IncrementalSignatures::new(g, 2, 4);
        for _ in 0..40 {
            let u = rng.gen_range(0..inc.graph().node_count() as u32);
            let v = rng.gen_range(0..inc.graph().node_count() as u32);
            if u != v {
                let _ = inc.add_edge(u, v, 0);
            }
            if rng.gen_bool(0.2) {
                inc.add_node(rng.gen_range(0..4));
            }
        }
        assert_matches_batch(&inc);
    }

    /// The compact mirror must stay exactly `quantize(sigs)` through an
    /// arbitrary interleaving of node adds and edge repairs.
    #[test]
    fn compact_mirror_stays_in_lockstep() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let mut g = DynamicGraph::new();
        for _ in 0..16 {
            g.add_node(rng.gen_range(0..4));
        }
        let mut inc = IncrementalSignatures::with_store(g, 2, 4, SigStoreKind::Compact);
        assert_eq!(inc.store_kind(), SigStoreKind::Compact);
        for _ in 0..60 {
            let u = rng.gen_range(0..inc.graph().node_count() as u32);
            let v = rng.gen_range(0..inc.graph().node_count() as u32);
            if u != v {
                let _ = inc.add_edge(u, v, 0);
            }
            if rng.gen_bool(0.25) {
                inc.add_node(rng.gen_range(0..4));
            }
        }
        assert_matches_batch(&inc);
        let fresh = CompactStore::from_matrix(inc.signatures(), false, default_scale(2));
        let mut got = vec![0.0f32; inc.label_capacity()];
        let mut want = vec![0.0f32; inc.label_capacity()];
        assert_eq!(inc.store().node_count(), inc.graph().node_count());
        for n in 0..inc.graph().node_count() as NodeId {
            inc.store().write_row(n, &mut got);
            fresh.write_row(n, &mut want);
            assert_eq!(got, want, "mirror row {n} drifted from quantize(sigs)");
        }
    }

    /// Seeding from a precomputed matrix must behave exactly like the
    /// batch-building constructor.
    #[test]
    fn precomputed_seed_matches_batch_build() {
        let mut g = DynamicGraph::new();
        for l in [0, 1, 1, 2] {
            g.add_node(l);
        }
        for (u, v) in [(0, 1), (1, 2), (2, 3)] {
            g.add_labeled_edge(u, v, 0).unwrap();
        }
        let seed = crate::matrix_signatures(&g.snapshot(), 2);
        let mut inc =
            IncrementalSignatures::from_precomputed(g, 2, 6, &seed, SigStoreKind::Dense);
        assert_eq!(inc.label_capacity(), 6);
        assert_matches_batch(&inc);
        inc.add_node(3);
        inc.add_edge(3, 4, 0).unwrap();
        assert_matches_batch(&inc);
    }
}
