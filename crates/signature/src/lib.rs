//! # psi-signature
//!
//! Neighborhood signatures (§3.1–3.2 of the SmartPSI paper).
//!
//! A node's *neighborhood signature* is a vector of per-label weights
//! describing how labels are distributed around the node: labels on
//! close-by nodes contribute more (`2^-d` per node at distance `d`).
//! Signatures power all three pillars of the paper:
//!
//! * **pruning** (Proposition 3.2): a data node whose signature does not
//!   *satisfy* the query pivot's signature cannot be a PSI answer,
//! * **guidance**: the optimistic matcher orders candidates by the
//!   *satisfiability score* derived from signatures,
//! * **learning**: signatures are the feature vectors fed to the
//!   node-type and plan classifiers.
//!
//! Two construction algorithms are provided, exactly as in the paper:
//! the exploration-based method ([`explore::exploration_signatures`],
//! BFS per node, shortest-distance semantics, `O(|N|·|L|·d^D)`) and the
//! matrix-based method ([`matrix::matrix_signatures`], `D` sparse
//! row-sum passes, `O(|N|·|L|·d·D)`). Figure 8 of the paper compares
//! their cost; `psi-bench` regenerates that comparison.
//!
//! ```
//! use psi_graph::builder::graph_from;
//! use psi_signature::matrix_signatures;
//!
//! let g = graph_from(&[0, 1, 1], &[(0, 1), (1, 2)]).unwrap();
//! let sig = matrix_signatures(&g, 2);
//! // Node 0 sees its own label (0) with weight 1 plus nearby label-1 mass.
//! assert!(sig.row(0)[0] >= 1.0);
//! assert!(sig.row(0)[1] > 0.0);
//! ```

#![warn(missing_docs)]

pub mod explore;
pub mod incremental;
pub mod key;
pub mod matrix;
pub mod score;
pub mod store;

pub use explore::exploration_signatures;
pub use incremental::{IncrementalSignatures, RepairStats};
pub use key::SignatureKey;
pub use matrix::{matrix_signatures, matrix_signatures_recorded};
pub use score::{satisfiability_score, satisfies, SATISFACTION_EPSILON};
pub use store::{default_scale, CompactStore, SigStore, SigStoreKind, SignatureStore};

use psi_graph::NodeId;

/// Default maximum propagation depth `D`; the paper's running examples
/// and experiments use 2.
pub const DEFAULT_DEPTH: u32 = 2;

/// Dense `|V| × |L|` matrix of neighborhood signatures.
///
/// Row `n` is the signature of node `n`; column `l` is the weight of
/// label `l`. Label alphabets in all paper datasets are small (≤ 71), so
/// dense rows are both compact and fast to compare.
#[derive(Debug, Clone, PartialEq)]
pub struct SignatureMatrix {
    data: Vec<f32>,
    label_count: usize,
}

impl SignatureMatrix {
    /// Create a zeroed matrix for `nodes × labels`.
    pub fn zeroed(nodes: usize, label_count: usize) -> Self {
        Self {
            data: vec![0.0; nodes * label_count],
            label_count,
        }
    }

    /// Create from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if the buffer length is not a multiple of `label_count`
    /// (for non-zero `label_count`).
    pub fn from_flat(data: Vec<f32>, label_count: usize) -> Self {
        if label_count > 0 {
            assert_eq!(data.len() % label_count, 0, "flat buffer must be |V|*|L|");
        } else {
            assert!(data.is_empty(), "label_count 0 requires empty buffer");
        }
        Self { data, label_count }
    }

    /// Number of node rows.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.data.len().checked_div(self.label_count).unwrap_or(0)
    }

    /// Number of label columns.
    #[inline]
    pub fn label_count(&self) -> usize {
        self.label_count
    }

    /// Signature of node `n`.
    #[inline]
    pub fn row(&self, n: NodeId) -> &[f32] {
        let i = n as usize * self.label_count;
        &self.data[i..i + self.label_count]
    }

    /// Mutable signature of node `n`.
    #[inline]
    pub fn row_mut(&mut self, n: NodeId) -> &mut [f32] {
        let i = n as usize * self.label_count;
        &mut self.data[i..i + self.label_count]
    }

    /// The flat row-major buffer.
    #[inline]
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }

    /// Append one zeroed row in place — `O(|L|)` amortized.
    ///
    /// This is how the incremental maintainer grows with its graph;
    /// reallocating a fresh matrix per added node (the pre-fix
    /// behavior) is quadratic over an insert stream.
    pub fn push_zeroed_row(&mut self) {
        self.data.resize(self.data.len() + self.label_count, 0.0);
    }

    /// Copy of this matrix keeping only the first `label_count`
    /// columns of every row.
    ///
    /// The evolving-graph engine keeps capacity-padded rows internally
    /// (extra all-zero columns, which never perturb the `f32`
    /// recurrence) and trims them when publishing a snapshot whose
    /// graph has a smaller label space.
    ///
    /// # Panics
    /// Panics if `label_count` exceeds the current column count.
    pub fn truncated(&self, label_count: usize) -> SignatureMatrix {
        assert!(
            label_count <= self.label_count,
            "cannot widen a matrix by truncation ({label_count} > {})",
            self.label_count
        );
        let mut out = SignatureMatrix::zeroed(self.node_count(), label_count);
        for n in 0..self.node_count() as u32 {
            out.row_mut(n).copy_from_slice(&self.row(n)[..label_count]);
        }
        out
    }

    /// Whether `row(u)` satisfies `query_row` (see [`score::satisfies`]).
    #[inline]
    pub fn row_satisfies(&self, u: NodeId, query_row: &[f32]) -> bool {
        score::satisfies(self.row(u), query_row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_dimensions() {
        let m = SignatureMatrix::zeroed(3, 4);
        assert_eq!(m.node_count(), 3);
        assert_eq!(m.label_count(), 4);
        assert!(m.row(2).iter().all(|&w| w == 0.0));
    }

    #[test]
    fn from_flat_roundtrip() {
        let m = SignatureMatrix::from_flat(vec![1.0, 2.0, 3.0, 4.0], 2);
        assert_eq!(m.node_count(), 2);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.as_flat().len(), 4);
    }

    #[test]
    #[should_panic(expected = "flat buffer")]
    fn from_flat_rejects_ragged() {
        SignatureMatrix::from_flat(vec![1.0, 2.0, 3.0], 2);
    }

    #[test]
    fn zero_labels_edge_case() {
        let m = SignatureMatrix::zeroed(0, 0);
        assert_eq!(m.node_count(), 0);
        let m2 = SignatureMatrix::from_flat(vec![], 0);
        assert_eq!(m2.node_count(), 0);
    }

    #[test]
    fn push_zeroed_row_grows_in_place() {
        let mut m = SignatureMatrix::zeroed(1, 3);
        m.row_mut(0)[1] = 2.0;
        m.push_zeroed_row();
        assert_eq!(m.node_count(), 2);
        assert_eq!(m.row(0), &[0.0, 2.0, 0.0], "existing rows untouched");
        assert_eq!(m.row(1), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn truncated_drops_trailing_columns() {
        let m = SignatureMatrix::from_flat(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3);
        let t = m.truncated(2);
        assert_eq!(t.label_count(), 2);
        assert_eq!(t.row(0), &[1.0, 2.0]);
        assert_eq!(t.row(1), &[4.0, 5.0]);
        // Full-width truncation is an identity copy.
        assert_eq!(m.truncated(3), m);
    }

    #[test]
    #[should_panic(expected = "cannot widen")]
    fn truncated_rejects_widening() {
        SignatureMatrix::zeroed(1, 2).truncated(3);
    }

    #[test]
    fn row_mut_updates() {
        let mut m = SignatureMatrix::zeroed(2, 2);
        m.row_mut(1)[0] = 9.0;
        assert_eq!(m.row(1), &[9.0, 0.0]);
        assert_eq!(m.row(0), &[0.0, 0.0]);
    }
}
