//! Pluggable signature storage: the [`SignatureStore`] trait and its
//! backends.
//!
//! The dense `|V| × |L|` f32 [`SignatureMatrix`] is the scaling wall of
//! a large deployment: at 10M nodes × 64 labels it costs 2.5 GB before
//! the graph itself, and every serving layer (services, evolving
//! snapshots, sharded slabs) pays it per copy. This module puts row
//! access, the Proposition 3.2 satisfaction test, the satisfiability
//! score, row-gather (sharding), and the push/repair hooks (incremental
//! maintenance) behind one trait with two concrete backends:
//!
//! * **Dense** — the existing [`SignatureMatrix`]: bit-exact paper
//!   reproduction, the default for every repro path.
//! * **Compact** — [`CompactStore`]: saturating fixed-point counters
//!   (u8 or u16 per label) plus a label-presence bitset fused in front
//!   of the count compare as a stage-1 fast path (reject before
//!   compare).
//!
//! ## Why quantization cannot change an answer
//!
//! Signature satisfaction is a per-label `candidate ≥ query` test used
//! only to *prune* candidates (Proposition 3.2); the search itself is
//! exhaustive. Pruning is sound as long as no **true** match is ever
//! rejected, and a true match satisfies `candidate[l] ≥ query[l]`
//! exactly. Both sides are quantized with the same map
//! `Q(w) = min(cap, round(w · scale))`, which is monotone
//! (non-decreasing), so `candidate ≥ query ⟹ Q(candidate) ≥ Q(query)`
//! — **including when either side saturates at the cap**. A saturated
//! counter can only make the filter *weaker* (letting a non-match
//! through costs steps; the search still rejects it), never stronger
//! against a true match. Hence valid sets are identical to the dense
//! backend for any `scale` and any cap.
//!
//! With `scale = 2^depth` ([`default_scale`]) quantization is also
//! *lossless* below the cap: depth-`D` matrix signatures live on the
//! `2^-D` grid (every weight is a sum of `count · 2^-d` terms, `d ≤
//! D`), so `w · scale` is an integer and dequantized rows, scores, and
//! cached prediction keys match the dense backend bit-for-bit until a
//! counter clips.

use psi_graph::NodeId;

use crate::score::{satisfiability_score, satisfies, SATISFACTION_EPSILON};
use crate::SignatureMatrix;

/// The shared tail rule of [`satisfies`]: query labels beyond the
/// store's alphabet must carry (effectively) zero weight. The rule is
/// row-independent, so the batch kernels decide it once per block
/// instead of once per row.
#[inline]
fn tail_is_zero(query_row: &[f32], shared: usize) -> bool {
    query_row[shared..].iter().all(|&w| w <= SATISFACTION_EPSILON)
}

/// Branch-free Proposition 3.2 prefix test over one dense row,
/// accumulated in 8 boolean lanes so LLVM lowers the inner loop to
/// packed f32 compares.
///
/// The lane predicate is `!(c + ε < q)` — the negation of the scalar
/// [`satisfies`] early-exit test — rather than the tempting `c + ε ≥ q`,
/// which differs on NaN. With the negated form a NaN weight produces
/// the same verdict bit the per-row path produces.
#[inline]
#[allow(clippy::neg_cmp_op_on_partial_ord)] // negation IS the predicate: see above
fn prefix_satisfies(row: &[f32], q: &[f32]) -> bool {
    debug_assert_eq!(row.len(), q.len());
    let mut lanes = [true; 8];
    let mut rc = row.chunks_exact(8);
    let mut qc = q.chunks_exact(8);
    for (r8, q8) in (&mut rc).zip(&mut qc) {
        for k in 0..8 {
            lanes[k] &= !(r8[k] + SATISFACTION_EPSILON < q8[k]);
        }
    }
    let mut ok = lanes.into_iter().all(|b| b);
    for (&c, &w) in rc.remainder().iter().zip(qc.remainder()) {
        ok &= !(c + SATISFACTION_EPSILON < w);
    }
    ok
}

/// The hoisted query side of a batched score sweep: the active terms
/// (`w > 0`, in index order — the exact accumulation order of the
/// scalar [`satisfiability_score`]) restricted to the store's alphabet,
/// plus the total term count. Terms beyond the alphabet contribute a
/// trailing `+0.0` in the scalar sum, which cannot change the bits of a
/// sum that starts at `+0.0`, so only their count survives the hoist.
fn active_terms(query_row: &[f32], label_count: usize) -> (Vec<(usize, f32)>, u32) {
    let mut active = Vec::new();
    let mut terms = 0u32;
    for (i, &w) in query_row.iter().enumerate() {
        if w > 0.0 {
            terms += 1;
            if i < label_count {
                active.push((i, w));
            }
        }
    }
    (active, terms)
}

/// Which signature storage backend a deployment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SigStoreKind {
    /// Dense f32 rows ([`SignatureMatrix`]) — bit-exact paper repro,
    /// 4 bytes per (node, label).
    Dense,
    /// Saturating u8 counters + presence bitset — ~1.1 bytes per
    /// (node, label), exact valid sets (see the module docs).
    Compact,
    /// Saturating u16 counters + presence bitset — ~2.1 bytes per
    /// (node, label); for graphs whose hubs overflow u8 counters so
    /// often that pruning power matters more than the last 2×.
    CompactWide,
}

impl SigStoreKind {
    /// Parse a CLI/config spelling (`dense`, `compact`, `compact16`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "dense" => Some(Self::Dense),
            "compact" | "compact8" => Some(Self::Compact),
            "compact16" | "compact-wide" => Some(Self::CompactWide),
            _ => None,
        }
    }

    /// Canonical display name (accepted back by [`SigStoreKind::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            Self::Dense => "dense",
            Self::Compact => "compact",
            Self::CompactWide => "compact16",
        }
    }
}

/// The fixed-point scale that makes quantization lossless below the
/// saturation cap: depth-`D` signatures live on the `2^-D` grid, so
/// `scale = 2^D` maps every unclipped weight to an exact integer. The
/// exponent is clamped (a depth beyond 8 would overflow the u8 cap on
/// the very first hop anyway); beyond the clamp quantization is merely
/// conservative, which keeps answers exact regardless.
pub fn default_scale(depth: u32) -> f32 {
    (1u32 << depth.min(8)) as f32
}

/// Storage abstraction over per-node signature rows.
///
/// Everything the engine needs from signatures goes through here: row
/// access (ML features and cache keys), the Proposition 3.2
/// satisfaction test, the §3.3 satisfiability score, row-gather (how
/// shard slabs are built), column truncation (how evolving snapshots
/// trim capacity padding), and the push/repair hooks the incremental
/// maintainer calls. `Send + Sync` because one store is shared
/// read-only by every worker of a deployment.
pub trait SignatureStore: Send + Sync + std::fmt::Debug {
    /// Which backend this is.
    fn kind(&self) -> SigStoreKind;

    /// Number of node rows.
    fn node_count(&self) -> usize;

    /// Number of label columns.
    fn label_count(&self) -> usize;

    /// Resident bytes of the index payload (rows + any presence tier);
    /// what the memory-sizing table and `BENCH_compact.json` report.
    fn index_bytes(&self) -> usize;

    /// Write node `n`'s (de-quantized) signature into `out`, which must
    /// hold exactly [`SignatureStore::label_count`] slots.
    fn write_row(&self, n: NodeId, out: &mut [f32]);

    /// Whether node `n`'s signature satisfies `query_row`
    /// (Proposition 3.2; see [`crate::satisfies`] for the dense
    /// semantics this must conservatively agree with).
    fn row_satisfies(&self, n: NodeId, query_row: &[f32]) -> bool;

    /// Satisfiability score of node `n` against `query_row` (§3.3).
    /// Guidance only — it orders candidate visits and never decides a
    /// verdict.
    fn row_score(&self, n: NodeId, query_row: &[f32]) -> f32;

    /// Batched [`SignatureStore::row_satisfies`] over the contiguous
    /// row block `range`: `out[i]` receives the verdict for node
    /// `range.start + i`. `out.len()` must equal the range length and
    /// the range must lie inside [`SignatureStore::node_count`].
    ///
    /// The default body is the per-row loop — the per-row method *is*
    /// the `chunk = 1` case — and both backends override it with a
    /// structure-of-arrays kernel that hoists the query-side work
    /// (tail rule, quantization, presence masks) out of the row loop.
    /// Overrides must stay bit-identical to this default; the parity
    /// suite (`crates/signature/tests/batch_parity.rs`) pins it.
    fn rows_satisfy(&self, range: std::ops::Range<NodeId>, query_row: &[f32], out: &mut [bool]) {
        assert_eq!(out.len(), range.len(), "output length mismatch");
        for (slot, n) in out.iter_mut().zip(range) {
            *slot = self.row_satisfies(n, query_row);
        }
    }

    /// Batched [`SignatureStore::row_score`] over the contiguous row
    /// block `range`: `out[i]` receives the score for node
    /// `range.start + i`. Same contract and bitwise-parity guarantee
    /// as [`SignatureStore::rows_satisfy`].
    fn rows_score(&self, range: std::ops::Range<NodeId>, query_row: &[f32], out: &mut [f32]) {
        assert_eq!(out.len(), range.len(), "output length mismatch");
        for (slot, n) in out.iter_mut().zip(range) {
            *slot = self.row_score(n, query_row);
        }
    }

    /// Gather `ids` into a new store of the same backend and width —
    /// the shard-slab build path (rows are *copied*, never recomputed:
    /// boundary balls extend outside a shard).
    fn gather(&self, ids: &[NodeId]) -> SigStore;

    /// Copy keeping only the first `label_count` columns of every row
    /// — the evolving-snapshot publish path (trimming capacity
    /// padding).
    fn truncated_store(&self, label_count: usize) -> SigStore;

    /// Append one row (the incremental maintainer's `add_node` hook).
    /// `row.len()` must equal [`SignatureStore::label_count`].
    fn push_row(&mut self, row: &[f32]);

    /// Overwrite row `n` (the incremental maintainer's repair hook).
    /// `row.len()` must equal [`SignatureStore::label_count`].
    fn set_row(&mut self, n: NodeId, row: &[f32]);
}

impl SignatureStore for SignatureMatrix {
    fn kind(&self) -> SigStoreKind {
        SigStoreKind::Dense
    }

    fn node_count(&self) -> usize {
        self.node_count()
    }

    fn label_count(&self) -> usize {
        self.label_count()
    }

    fn index_bytes(&self) -> usize {
        std::mem::size_of_val(self.as_flat())
    }

    fn write_row(&self, n: NodeId, out: &mut [f32]) {
        out.copy_from_slice(self.row(n));
    }

    fn row_satisfies(&self, n: NodeId, query_row: &[f32]) -> bool {
        satisfies(self.row(n), query_row)
    }

    fn row_score(&self, n: NodeId, query_row: &[f32]) -> f32 {
        satisfiability_score(self.row(n), query_row)
    }

    // The single-label fast path repeats [`prefix_satisfies`]'s
    // NaN-exact `!(c + ε < q)` lane predicate; same rationale.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    fn rows_satisfy(&self, range: std::ops::Range<NodeId>, query_row: &[f32], out: &mut [bool]) {
        assert_eq!(out.len(), range.len(), "output length mismatch");
        let l = self.label_count();
        let shared = l.min(query_row.len());
        if !tail_is_zero(query_row, shared) {
            out.fill(false);
            return;
        }
        if shared == 0 {
            // No constrained labels: every row trivially satisfies.
            out.fill(true);
            return;
        }
        let q = &query_row[..shared];
        let base = range.start as usize * l;
        let block = &self.as_flat()[base..base + out.len() * l];
        if l == 1 {
            // One-label alphabets collapse the label loop entirely:
            // the candidate axis becomes the vector axis, one packed
            // compare per 8 rows.
            let q0 = q[0];
            for (slot, &c) in out.iter_mut().zip(block) {
                *slot = !(c + SATISFACTION_EPSILON < q0);
            }
            return;
        }
        for (slot, row) in out.iter_mut().zip(block.chunks_exact(l)) {
            *slot = prefix_satisfies(&row[..shared], q);
        }
    }

    fn rows_score(&self, range: std::ops::Range<NodeId>, query_row: &[f32], out: &mut [f32]) {
        assert_eq!(out.len(), range.len(), "output length mismatch");
        let l = self.label_count();
        let (active, terms) = active_terms(query_row, l);
        if terms == 0 {
            out.fill(f32::INFINITY);
            return;
        }
        let flat = self.as_flat();
        let base = range.start as usize * l;
        for (i, slot) in out.iter_mut().enumerate() {
            let row = &flat[base + i * l..base + (i + 1) * l];
            let mut sum = 0.0f32;
            for &(idx, w) in &active {
                sum += row[idx] / w;
            }
            *slot = sum / terms as f32;
        }
    }

    fn gather(&self, ids: &[NodeId]) -> SigStore {
        let width = self.label_count();
        let mut flat = Vec::with_capacity(ids.len() * width);
        for &n in ids {
            flat.extend_from_slice(self.row(n));
        }
        SigStore::Dense(SignatureMatrix::from_flat(flat, width))
    }

    fn truncated_store(&self, label_count: usize) -> SigStore {
        SigStore::Dense(self.truncated(label_count))
    }

    fn push_row(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.label_count(), "row width mismatch");
        self.push_zeroed_row();
        let n = self.node_count() as NodeId - 1;
        self.row_mut(n).copy_from_slice(row);
    }

    fn set_row(&mut self, n: NodeId, row: &[f32]) {
        self.row_mut(n).copy_from_slice(row);
    }
}

/// The counter slab of a [`CompactStore`]: one saturating fixed-point
/// counter per (node, label).
#[derive(Debug, Clone, PartialEq, Eq)]
enum CountSlab {
    U8(Vec<u8>),
    U16(Vec<u16>),
}

impl CountSlab {
    fn cap(&self) -> u32 {
        match self {
            CountSlab::U8(_) => u8::MAX as u32,
            CountSlab::U16(_) => u16::MAX as u32,
        }
    }

    fn len(&self) -> usize {
        match self {
            CountSlab::U8(v) => v.len(),
            CountSlab::U16(v) => v.len(),
        }
    }

    fn bytes(&self) -> usize {
        match self {
            CountSlab::U8(v) => v.len(),
            CountSlab::U16(v) => v.len() * 2,
        }
    }

    #[inline]
    fn get(&self, i: usize) -> u32 {
        match self {
            CountSlab::U8(v) => v[i] as u32,
            CountSlab::U16(v) => v[i] as u32,
        }
    }

    fn set(&mut self, i: usize, q: u32) {
        match self {
            CountSlab::U8(v) => v[i] = q as u8,
            CountSlab::U16(v) => v[i] = q as u16,
        }
    }

    fn grow(&mut self, by: usize) {
        match self {
            CountSlab::U8(v) => v.resize(v.len() + by, 0),
            CountSlab::U16(v) => v.resize(v.len() + by, 0),
        }
    }

    fn empty_like(&self, capacity: usize) -> CountSlab {
        match self {
            CountSlab::U8(_) => CountSlab::U8(Vec::with_capacity(capacity)),
            CountSlab::U16(_) => CountSlab::U16(Vec::with_capacity(capacity)),
        }
    }

    fn extend_from(&mut self, other: &CountSlab, range: std::ops::Range<usize>) {
        match (self, other) {
            (CountSlab::U8(dst), CountSlab::U8(src)) => dst.extend_from_slice(&src[range]),
            (CountSlab::U16(dst), CountSlab::U16(src)) => dst.extend_from_slice(&src[range]),
            // `empty_like` / `gather` / `truncated_compact` always pair
            // a slab with its own width.
            _ => unreachable!("mismatched slab widths"),
        }
    }
}

/// Quantized compact signature index: saturating fixed-point counters
/// (u8 or u16 per label) with a label-presence bitset fused in front of
/// every satisfaction test as the stage-1 fast path.
///
/// The presence tier stores one bit per (node, label) — set iff the
/// quantized counter is non-zero — so a candidate missing *any* label
/// the query needs is rejected by bit tests on a 64-label word without
/// ever touching the counter slab. At u8 width the whole index costs
/// `|V| · (|L| + |L|/8)` bytes ≈ 28% of the dense f32 matrix.
///
/// Answer exactness under quantization and saturation is argued in the
/// [module docs](self); the differential suite
/// (`crates/core/tests/compact.rs`) enforces it.
#[derive(Debug, Clone, PartialEq)]
pub struct CompactStore {
    counts: CountSlab,
    /// Presence bitset, `words_per_row` u64 words per node row.
    presence: Vec<u64>,
    words_per_row: usize,
    label_count: usize,
    /// Fixed-point scale: stored counter ≈ `weight · scale`, clipped at
    /// the slab's cap.
    scale: f32,
}

impl CompactStore {
    /// Quantize a dense matrix at `scale` (see [`default_scale`]).
    /// `wide` selects u16 counters instead of u8.
    pub fn from_matrix(m: &SignatureMatrix, wide: bool, scale: f32) -> Self {
        let mut out = Self::empty(m.label_count(), wide, scale);
        for n in 0..m.node_count() as NodeId {
            out.push_row(m.row(n));
        }
        out
    }

    /// An empty store ready to absorb rows via
    /// [`SignatureStore::push_row`].
    pub fn empty(label_count: usize, wide: bool, scale: f32) -> Self {
        assert!(scale > 0.0, "quantization scale must be positive");
        Self {
            counts: if wide {
                CountSlab::U16(Vec::new())
            } else {
                CountSlab::U8(Vec::new())
            },
            presence: Vec::new(),
            words_per_row: label_count.div_ceil(64),
            label_count,
            scale,
        }
    }

    /// The fixed-point scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The saturation cap of the counter slab (255 or 65535).
    pub fn cap(&self) -> u32 {
        self.counts.cap()
    }

    /// Whether this store uses u16 counters.
    pub fn is_wide(&self) -> bool {
        matches!(self.counts, CountSlab::U16(_))
    }

    /// Monotone saturating quantization: `min(cap, round(w · scale))`.
    /// Monotonicity is the whole exactness argument (module docs), so
    /// both the stored rows and the query side go through this exact
    /// map.
    #[inline]
    pub fn quantize(&self, w: f32) -> u32 {
        // `as u32` saturates on overflow and clamps negatives to 0;
        // weights are non-negative by construction.
        ((w * self.scale + 0.5) as u32).min(self.counts.cap())
    }

    #[inline]
    fn count(&self, n: NodeId, l: usize) -> u32 {
        self.counts.get(n as usize * self.label_count + l)
    }

    #[inline]
    fn presence_row(&self, n: NodeId) -> &[u64] {
        let i = n as usize * self.words_per_row;
        &self.presence[i..i + self.words_per_row]
    }

    /// Truncation that stays compact (the capacity-padding trim of the
    /// evolving publish path). Padding columns hold zero counters and
    /// clear presence bits, so dropping them loses nothing.
    pub fn truncated_compact(&self, label_count: usize) -> CompactStore {
        assert!(
            label_count <= self.label_count,
            "cannot widen a store by truncation ({label_count} > {})",
            self.label_count
        );
        let nodes = self.node_count();
        let mut out = Self::empty(label_count, self.is_wide(), self.scale);
        out.counts = self.counts.empty_like(nodes * label_count);
        out.presence.reserve(nodes * out.words_per_row);
        for n in 0..nodes {
            let base = n * self.label_count;
            out.counts.extend_from(&self.counts, base..base + label_count);
            let prow = self.presence_row(n as NodeId);
            for (w, &word) in prow.iter().take(out.words_per_row).enumerate() {
                let mut word = word;
                let high = label_count - w * 64;
                if high < 64 {
                    word &= (1u64 << high) - 1;
                }
                out.presence.push(word);
            }
        }
        out
    }
}

impl SignatureStore for CompactStore {
    fn kind(&self) -> SigStoreKind {
        if self.is_wide() {
            SigStoreKind::CompactWide
        } else {
            SigStoreKind::Compact
        }
    }

    fn node_count(&self) -> usize {
        self.counts.len().checked_div(self.label_count).unwrap_or(0)
    }

    fn label_count(&self) -> usize {
        self.label_count
    }

    fn index_bytes(&self) -> usize {
        self.counts.bytes() + self.presence.len() * std::mem::size_of::<u64>()
    }

    fn write_row(&self, n: NodeId, out: &mut [f32]) {
        assert_eq!(out.len(), self.label_count, "row width mismatch");
        for (l, slot) in out.iter_mut().enumerate() {
            *slot = self.count(n, l) as f32 / self.scale;
        }
    }

    fn row_satisfies(&self, n: NodeId, query_row: &[f32]) -> bool {
        let shared = self.label_count.min(query_row.len());
        // Query labels beyond this store's alphabet must carry no
        // weight — same tail rule as the dense `satisfies`.
        if !tail_is_zero(query_row, shared) {
            return false;
        }
        let prow = self.presence_row(n);
        for (l, &w) in query_row[..shared].iter().enumerate() {
            let needed = self.quantize(w);
            if needed == 0 {
                continue;
            }
            // Stage 1 — presence tier: a needed label with a clear bit
            // rejects without reading the counter slab.
            if prow[l >> 6] & (1u64 << (l & 63)) == 0 {
                return false;
            }
            // Stage 2 — saturating counter compare. Both sides went
            // through the same monotone quantization, so a true match
            // can never fail here (module docs).
            if self.count(n, l) < needed {
                return false;
            }
        }
        true
    }

    fn row_score(&self, n: NodeId, query_row: &[f32]) -> f32 {
        // Mirrors `satisfiability_score` term-for-term over dequantized
        // counters: identical to dense while nothing saturates (the
        // scale is lossless on the signature grid), merely approximate
        // past the cap — scores order visits, they never decide.
        let mut sum = 0.0f32;
        let mut terms = 0u32;
        for (i, &w) in query_row.iter().enumerate() {
            if w > 0.0 {
                let c = if i < self.label_count {
                    self.count(n, i) as f32 / self.scale
                } else {
                    0.0
                };
                sum += c / w;
                terms += 1;
            }
        }
        if terms == 0 {
            f32::INFINITY
        } else {
            sum / terms as f32
        }
    }

    fn rows_satisfy(&self, range: std::ops::Range<NodeId>, query_row: &[f32], out: &mut [bool]) {
        assert_eq!(out.len(), range.len(), "output length mismatch");
        let shared = self.label_count.min(query_row.len());
        if !tail_is_zero(query_row, shared) {
            out.fill(false);
            return;
        }
        // Quantize the query once for the whole block: the sparse
        // needed-count list drives the counter compares, and its
        // per-word presence masks drive the word-at-a-time stage-1
        // fast path.
        let mut needs: Vec<(usize, u32)> = Vec::new();
        let mut qmask = vec![0u64; self.words_per_row];
        for (l, &w) in query_row[..shared].iter().enumerate() {
            let needed = self.quantize(w);
            if needed > 0 {
                needs.push((l, needed));
                qmask[l >> 6] |= 1u64 << (l & 63);
            }
        }
        let start = range.start as usize;
        for (i, slot) in out.iter_mut().enumerate() {
            // Stage 1 — presence words: any needed label missing from
            // the row rejects on |L|/64 AND-NOT words, without
            // touching the counter slab.
            let prow = self.presence_row((start + i) as NodeId);
            let mut missing = 0u64;
            for (&have, &need) in prow.iter().zip(&qmask) {
                missing |= !have & need;
            }
            if missing != 0 {
                *slot = false;
                continue;
            }
            // Stage 2 — saturating counter compares on the needed
            // labels only.
            let base = (start + i) * self.label_count;
            *slot = needs.iter().all(|&(l, needed)| self.counts.get(base + l) >= needed);
        }
    }

    fn rows_score(&self, range: std::ops::Range<NodeId>, query_row: &[f32], out: &mut [f32]) {
        assert_eq!(out.len(), range.len(), "output length mismatch");
        let (active, terms) = active_terms(query_row, self.label_count);
        if terms == 0 {
            out.fill(f32::INFINITY);
            return;
        }
        let start = range.start as usize;
        for (i, slot) in out.iter_mut().enumerate() {
            let base = (start + i) * self.label_count;
            let mut sum = 0.0f32;
            for &(l, w) in &active {
                sum += (self.counts.get(base + l) as f32 / self.scale) / w;
            }
            *slot = sum / terms as f32;
        }
    }

    fn gather(&self, ids: &[NodeId]) -> SigStore {
        let mut out = Self::empty(self.label_count, self.is_wide(), self.scale);
        out.counts = self.counts.empty_like(ids.len() * self.label_count);
        out.presence.reserve(ids.len() * self.words_per_row);
        for &n in ids {
            let base = n as usize * self.label_count;
            out.counts.extend_from(&self.counts, base..base + self.label_count);
            out.presence.extend_from_slice(self.presence_row(n));
        }
        SigStore::Compact(out)
    }

    fn truncated_store(&self, label_count: usize) -> SigStore {
        SigStore::Compact(self.truncated_compact(label_count))
    }

    fn push_row(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.label_count, "row width mismatch");
        let n = self.node_count();
        self.counts.grow(self.label_count);
        self.presence.resize(self.presence.len() + self.words_per_row, 0);
        self.set_row(n as NodeId, row);
    }

    fn set_row(&mut self, n: NodeId, row: &[f32]) {
        assert_eq!(row.len(), self.label_count, "row width mismatch");
        let base = n as usize * self.label_count;
        let pbase = n as usize * self.words_per_row;
        for w in &mut self.presence[pbase..pbase + self.words_per_row] {
            *w = 0;
        }
        for (l, &v) in row.iter().enumerate() {
            let q = self.quantize(v);
            self.counts.set(base + l, q);
            if q > 0 {
                self.presence[pbase + (l >> 6)] |= 1u64 << (l & 63);
            }
        }
    }
}

/// An owned signature store of either backend — what a deployment
/// context actually holds. Dispatch is a two-arm match (no boxing), and
/// the enum itself implements [`SignatureStore`], so `&SigStore`
/// coerces to `&dyn SignatureStore` wherever the engine is generic over
/// storage.
#[derive(Debug, Clone, PartialEq)]
pub enum SigStore {
    /// Dense f32 rows.
    Dense(SignatureMatrix),
    /// Quantized counters + presence bitset.
    Compact(CompactStore),
}

impl SigStore {
    /// Wrap a freshly built dense matrix in the requested backend,
    /// dropping the dense copy when quantizing. `scale` is the
    /// fixed-point scale for compact backends (see [`default_scale`]).
    pub fn from_matrix(m: SignatureMatrix, kind: SigStoreKind, scale: f32) -> Self {
        match kind {
            SigStoreKind::Dense => SigStore::Dense(m),
            SigStoreKind::Compact => SigStore::Compact(CompactStore::from_matrix(&m, false, scale)),
            SigStoreKind::CompactWide => {
                SigStore::Compact(CompactStore::from_matrix(&m, true, scale))
            }
        }
    }

    /// The dense matrix, when this is the dense backend (the bit-exact
    /// repro surface: pinned paper-example tests and figure benches
    /// read raw f32 rows).
    pub fn dense(&self) -> Option<&SignatureMatrix> {
        match self {
            SigStore::Dense(m) => Some(m),
            SigStore::Compact(_) => None,
        }
    }

    /// Which backend this is.
    pub fn kind(&self) -> SigStoreKind {
        match self {
            SigStore::Dense(_) => SigStoreKind::Dense,
            SigStore::Compact(c) => SignatureStore::kind(c),
        }
    }

    /// Number of node rows.
    pub fn node_count(&self) -> usize {
        match self {
            SigStore::Dense(m) => m.node_count(),
            SigStore::Compact(c) => SignatureStore::node_count(c),
        }
    }

    /// Number of label columns.
    pub fn label_count(&self) -> usize {
        match self {
            SigStore::Dense(m) => m.label_count(),
            SigStore::Compact(c) => SignatureStore::label_count(c),
        }
    }

    /// Resident bytes of the index payload.
    pub fn index_bytes(&self) -> usize {
        match self {
            SigStore::Dense(m) => SignatureStore::index_bytes(m),
            SigStore::Compact(c) => SignatureStore::index_bytes(c),
        }
    }

    /// Borrow row `n` as f32: the dense backend lends its row directly
    /// (no copy, no allocation); the compact backend dequantizes into
    /// `buf` and lends that. This is how the ML feature/cache-key path
    /// reads rows without committing the hot path to a copy.
    pub fn row_view<'a>(&'a self, n: NodeId, buf: &'a mut Vec<f32>) -> &'a [f32] {
        match self {
            SigStore::Dense(m) => m.row(n),
            SigStore::Compact(c) => {
                buf.resize(SignatureStore::label_count(c), 0.0);
                c.write_row(n, buf);
                buf
            }
        }
    }
}

impl SignatureStore for SigStore {
    fn kind(&self) -> SigStoreKind {
        SigStore::kind(self)
    }

    fn node_count(&self) -> usize {
        SigStore::node_count(self)
    }

    fn label_count(&self) -> usize {
        SigStore::label_count(self)
    }

    fn index_bytes(&self) -> usize {
        SigStore::index_bytes(self)
    }

    fn write_row(&self, n: NodeId, out: &mut [f32]) {
        match self {
            SigStore::Dense(m) => SignatureStore::write_row(m, n, out),
            SigStore::Compact(c) => c.write_row(n, out),
        }
    }

    fn row_satisfies(&self, n: NodeId, query_row: &[f32]) -> bool {
        match self {
            SigStore::Dense(m) => satisfies(m.row(n), query_row),
            SigStore::Compact(c) => c.row_satisfies(n, query_row),
        }
    }

    fn row_score(&self, n: NodeId, query_row: &[f32]) -> f32 {
        match self {
            SigStore::Dense(m) => satisfiability_score(m.row(n), query_row),
            SigStore::Compact(c) => c.row_score(n, query_row),
        }
    }

    fn rows_satisfy(&self, range: std::ops::Range<NodeId>, query_row: &[f32], out: &mut [bool]) {
        match self {
            SigStore::Dense(m) => SignatureStore::rows_satisfy(m, range, query_row, out),
            SigStore::Compact(c) => c.rows_satisfy(range, query_row, out),
        }
    }

    fn rows_score(&self, range: std::ops::Range<NodeId>, query_row: &[f32], out: &mut [f32]) {
        match self {
            SigStore::Dense(m) => SignatureStore::rows_score(m, range, query_row, out),
            SigStore::Compact(c) => c.rows_score(range, query_row, out),
        }
    }

    fn gather(&self, ids: &[NodeId]) -> SigStore {
        match self {
            SigStore::Dense(m) => SignatureStore::gather(m, ids),
            SigStore::Compact(c) => c.gather(ids),
        }
    }

    fn truncated_store(&self, label_count: usize) -> SigStore {
        match self {
            SigStore::Dense(m) => SignatureStore::truncated_store(m, label_count),
            SigStore::Compact(c) => c.truncated_store(label_count),
        }
    }

    fn push_row(&mut self, row: &[f32]) {
        match self {
            SigStore::Dense(m) => SignatureStore::push_row(m, row),
            SigStore::Compact(c) => c.push_row(row),
        }
    }

    fn set_row(&mut self, n: NodeId, row: &[f32]) {
        match self {
            SigStore::Dense(m) => SignatureStore::set_row(m, n, row),
            SigStore::Compact(c) => c.set_row(n, row),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_graph::builder::graph_from;

    fn paper_matrix() -> SignatureMatrix {
        // Figure 2 of the paper (depth 2) — quarter-grid weights.
        let g = graph_from(&[0, 1, 1, 2, 3], &[(0, 1), (1, 2), (1, 3), (2, 3), (3, 4)]).unwrap();
        crate::matrix_signatures(&g, 2)
    }

    #[test]
    fn quantization_is_lossless_on_the_signature_grid() {
        let m = paper_matrix();
        let c = CompactStore::from_matrix(&m, false, default_scale(2));
        let mut buf = vec![0.0; m.label_count()];
        for n in 0..m.node_count() as NodeId {
            c.write_row(n, &mut buf);
            assert_eq!(&buf[..], m.row(n), "node {n} dequantizes bit-exactly");
        }
    }

    #[test]
    fn satisfies_and_score_match_dense_below_cap() {
        let m = paper_matrix();
        for wide in [false, true] {
            let c = CompactStore::from_matrix(&m, wide, default_scale(2));
            for n in 0..m.node_count() as NodeId {
                for q in 0..m.node_count() as NodeId {
                    let qrow = m.row(q);
                    assert_eq!(
                        c.row_satisfies(n, qrow),
                        satisfies(m.row(n), qrow),
                        "satisfies({n}, {q}) wide={wide}"
                    );
                    assert_eq!(
                        c.row_score(n, qrow).to_bits(),
                        satisfiability_score(m.row(n), qrow).to_bits(),
                        "score({n}, {q}) wide={wide}"
                    );
                }
            }
        }
    }

    #[test]
    fn saturation_never_prunes_a_true_match() {
        // Candidate weights that blow far past the u8 cap at scale 4:
        // a true match (candidate >= query pointwise) must still pass,
        // whether the query side saturates or not.
        let m = SignatureMatrix::from_flat(
            vec![
                500.0, 50.0, 0.25, // candidate: saturates on label 0
                400.0, 30.0, 0.25, // query: also saturates on label 0
            ],
            3,
        );
        let c = CompactStore::from_matrix(&m, false, 4.0);
        assert_eq!(c.cap(), 255);
        assert!(c.quantize(500.0) == 255 && c.quantize(400.0) == 255);
        assert!(satisfies(m.row(0), m.row(1)), "dense ground truth");
        assert!(c.row_satisfies(0, m.row(1)), "saturated compare stays conservative");
        // The reverse violates on label 1 (30 < 50, both far below the
        // cap), so the quantized filter must still reject it. (On the
        // cap-saturated label 0 both sides clip to 255 — saturation can
        // only weaken the filter, never invert a below-cap rejection.)
        assert!(!satisfies(m.row(1), m.row(0)));
        assert!(!c.row_satisfies(1, m.row(0)));
    }

    #[test]
    fn quantized_filter_is_conservative_on_random_rows() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for wide in [false, true] {
            for _ in 0..200 {
                let l = rng.gen_range(1..9usize);
                let cand: Vec<f32> = (0..l).map(|_| rng.gen_range(0..400) as f32 * 0.25).collect();
                // True matches by construction: query <= candidate.
                let query: Vec<f32> =
                    cand.iter().map(|&c| c * rng.gen_range(0.0..=1.0f32)).collect();
                let m = SignatureMatrix::from_flat(cand.clone(), l);
                let c = CompactStore::from_matrix(&m, wide, 4.0);
                assert!(
                    c.row_satisfies(0, &query),
                    "true match pruned: cand {cand:?} query {query:?} wide {wide}"
                );
            }
        }
    }

    #[test]
    fn presence_tier_rejects_missing_labels() {
        let m = SignatureMatrix::from_flat(vec![1.0, 0.0, 2.0], 3);
        let c = CompactStore::from_matrix(&m, false, 4.0);
        // Label 1 is absent from the candidate: one presence bit test.
        assert!(!c.row_satisfies(0, &[0.0, 0.25, 0.0]));
        assert!(c.row_satisfies(0, &[1.0, 0.0, 2.0]));
    }

    #[test]
    fn tail_labels_beyond_alphabet_follow_dense_rule() {
        let m = SignatureMatrix::from_flat(vec![1.0, 1.0], 2);
        let c = CompactStore::from_matrix(&m, false, 4.0);
        assert!(!c.row_satisfies(0, &[1.0, 0.0, 0.5]));
        assert!(c.row_satisfies(0, &[1.0, 0.0, 0.0]));
    }

    #[test]
    fn gather_and_truncate_preserve_rows() {
        let m = paper_matrix();
        let store: SigStore = SigStore::from_matrix(m.clone(), SigStoreKind::Compact, 4.0);
        let picked = [4u32, 0, 2];
        let sub = store.gather(&picked);
        let mut buf = Vec::new();
        for (local, &global) in picked.iter().enumerate() {
            assert_eq!(sub.row_view(local as NodeId, &mut buf), m.row(global));
        }
        let trimmed = store.truncated_store(2);
        assert_eq!(trimmed.label_count(), 2);
        for n in 0..m.node_count() as NodeId {
            assert_eq!(trimmed.row_view(n, &mut buf), &m.row(n)[..2]);
        }
    }

    #[test]
    fn push_and_set_row_maintain_presence() {
        let mut c = CompactStore::empty(70, false, 4.0);
        let mut row = vec![0.0f32; 70];
        row[0] = 1.0;
        row[69] = 2.5;
        c.push_row(&row);
        assert_eq!(SignatureStore::node_count(&c), 1);
        let mut out = vec![0.0; 70];
        c.write_row(0, &mut out);
        assert_eq!(out, row);
        assert!(c.row_satisfies(0, &row));
        // Repair hook: overwrite clears stale presence bits.
        let mut row2 = vec![0.0f32; 70];
        row2[5] = 0.75;
        c.set_row(0, &row2);
        c.write_row(0, &mut out);
        assert_eq!(out, row2);
        assert!(!c.row_satisfies(0, &row), "old labels no longer present");
        assert!(c.row_satisfies(0, &row2));
    }

    #[test]
    fn index_bytes_undercut_dense_by_three_x() {
        let m = SignatureMatrix::zeroed(1000, 64);
        let dense_bytes = SignatureStore::index_bytes(&m);
        let c = CompactStore::from_matrix(&m, false, 4.0);
        assert_eq!(dense_bytes, 1000 * 64 * 4);
        assert!(
            SignatureStore::index_bytes(&c) * 3 <= dense_bytes,
            "u8 + presence must stay under a third of dense: {} vs {dense_bytes}",
            SignatureStore::index_bytes(&c)
        );
    }

    #[test]
    fn batch_kernels_match_per_row_over_every_range() {
        let m = paper_matrix();
        let stores: Vec<SigStore> = vec![
            SigStore::Dense(m.clone()),
            SigStore::from_matrix(m.clone(), SigStoreKind::Compact, default_scale(2)),
            SigStore::from_matrix(m.clone(), SigStoreKind::CompactWide, default_scale(2)),
        ];
        let nodes = m.node_count() as NodeId;
        for store in &stores {
            for q in 0..nodes {
                let qrow = m.row(q).to_vec();
                for start in 0..=nodes {
                    for end in start..=nodes {
                        let len = (end - start) as usize;
                        let mut sat = vec![false; len];
                        let mut score = vec![0.0f32; len];
                        store.rows_satisfy(start..end, &qrow, &mut sat);
                        store.rows_score(start..end, &qrow, &mut score);
                        for i in 0..len {
                            let n = start + i as NodeId;
                            assert_eq!(
                                sat[i],
                                store.row_satisfies(n, &qrow),
                                "satisfy {:?} range {start}..{end} node {n} query {q}",
                                store.kind()
                            );
                            assert_eq!(
                                score[i].to_bits(),
                                store.row_score(n, &qrow).to_bits(),
                                "score {:?} range {start}..{end} node {n} query {q}",
                                store.kind()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn batch_satisfy_preserves_nan_verdicts() {
        // A NaN candidate weight never compares less-than, so the
        // scalar early-exit test lets it pass; the branch-free lanes
        // must agree bit-for-bit (this is why the kernel negates the
        // `<` predicate instead of testing `>=`).
        let m = SignatureMatrix::from_flat(
            vec![f32::NAN, 2.0, 1.0, 0.5, 0.25, 2.0, 1.0, 0.5],
            4,
        );
        let q = [1.0f32, 1.0, 1.0, 0.25];
        let mut out = [false; 2];
        SignatureStore::rows_satisfy(&m, 0..2, &q, &mut out);
        assert_eq!(out[0], satisfies(m.row(0), &q));
        assert!(out[0], "NaN weight passes the scalar test, so batch must too");
        assert_eq!(out[1], satisfies(m.row(1), &q));
        assert!(!out[1], "0.25 < 1.0 rejects in both paths");
    }

    #[test]
    fn batch_kernels_handle_degenerate_shapes() {
        let m = paper_matrix();
        let store = SigStore::Dense(m.clone());
        let qrow = m.row(0).to_vec();
        // Empty range: nothing written, nothing read.
        store.rows_satisfy(2..2, &qrow, &mut []);
        store.rows_score(2..2, &qrow, &mut []);
        // All-zero query: every row satisfies, every score is +inf.
        let zeros = vec![0.0f32; m.label_count()];
        let n = m.node_count();
        let mut sat = vec![false; n];
        let mut score = vec![0.0f32; n];
        store.rows_satisfy(0..n as NodeId, &zeros, &mut sat);
        store.rows_score(0..n as NodeId, &zeros, &mut score);
        assert!(sat.iter().all(|&b| b));
        assert!(score.iter().all(|&s| s == f32::INFINITY));
        // Query wider than the alphabet with weight in the tail:
        // whole block rejected by the hoisted tail rule.
        let mut wide = zeros.clone();
        wide.push(1.0);
        store.rows_satisfy(0..n as NodeId, &wide, &mut sat);
        assert!(sat.iter().all(|&b| !b));
    }

    #[test]
    fn single_label_fast_path_matches_scalar() {
        // label_count == 1 takes the across-rows vector path.
        let m = SignatureMatrix::from_flat(vec![0.0, 0.25, 0.5, 1.0, 2.0], 1);
        for qw in [0.0f32, 0.25, 0.6, 2.0, 5.0] {
            let q = [qw];
            let mut sat = [false; 5];
            let mut score = [0.0f32; 5];
            SignatureStore::rows_satisfy(&m, 0..5, &q, &mut sat);
            SignatureStore::rows_score(&m, 0..5, &q, &mut score);
            for n in 0..5u32 {
                assert_eq!(sat[n as usize], satisfies(m.row(n), &q), "q={qw} n={n}");
                assert_eq!(
                    score[n as usize].to_bits(),
                    satisfiability_score(m.row(n), &q).to_bits(),
                    "q={qw} n={n}"
                );
            }
        }
    }

    #[test]
    fn kind_parse_roundtrip() {
        for k in [SigStoreKind::Dense, SigStoreKind::Compact, SigStoreKind::CompactWide] {
            assert_eq!(SigStoreKind::parse(k.name()), Some(k));
        }
        assert_eq!(SigStoreKind::parse("sparse"), None);
    }

    #[test]
    fn dense_store_hooks_match_matrix_ops() {
        let mut m: SigStore = SigStore::Dense(SignatureMatrix::zeroed(1, 3));
        m.push_row(&[1.0, 0.5, 0.0]);
        m.set_row(0, &[0.25, 0.0, 0.0]);
        let d = m.dense().unwrap();
        assert_eq!(d.row(0), &[0.25, 0.0, 0.0]);
        assert_eq!(d.row(1), &[1.0, 0.5, 0.0]);
    }
}
