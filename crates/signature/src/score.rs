//! Signature satisfaction (Proposition 3.2) and satisfiability scores
//! (§3.3).

/// Relative slack used in satisfaction comparisons.
///
/// Signature weights are sums of `count · 2^-d` terms and are exact in
/// `f32` at the scales of the paper's datasets, but the matrix method
/// accumulates in arbitrary order; a small epsilon guarantees that
/// Proposition 3.2 never prunes a true match because of rounding.
pub const SATISFACTION_EPSILON: f32 = 1e-4;

/// Whether signature `candidate` satisfies signature `query`:
/// for every label, `candidate[l] ≥ query[l]` (within
/// [`SATISFACTION_EPSILON`]).
///
/// Rows must come from the same label space; if `candidate` is shorter
/// than `query` (the data graph misses labels the query uses), the
/// missing weights are treated as 0.
#[inline]
pub fn satisfies(candidate: &[f32], query: &[f32]) -> bool {
    let shared = candidate.len().min(query.len());
    for i in 0..shared {
        if candidate[i] + SATISFACTION_EPSILON < query[i] {
            return false;
        }
    }
    // Query labels beyond the candidate's alphabet must have zero weight.
    query[shared..].iter().all(|&w| w <= SATISFACTION_EPSILON)
}

/// Satisfiability score `SS(u, v) = avg_{(l, w_l) ∈ NS_v} (NS_u(l) / w_l)`
/// over the labels with non-zero weight in the query signature.
///
/// Larger scores mean `u`'s neighborhood is richer in exactly the labels
/// the query node needs, so `u` is a more promising branch — the
/// optimistic matcher visits candidates in descending score order.
/// Returns `f32::INFINITY` when the query signature is all-zero (a
/// degenerate query that any node trivially satisfies).
#[inline]
pub fn satisfiability_score(candidate: &[f32], query: &[f32]) -> f32 {
    let mut sum = 0.0f32;
    let mut terms = 0u32;
    for (i, &w) in query.iter().enumerate() {
        if w > 0.0 {
            let c = candidate.get(i).copied().unwrap_or(0.0);
            sum += c / w;
            terms += 1;
        }
    }
    if terms == 0 {
        f32::INFINITY
    } else {
        sum / terms as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_satisfaction_example() {
        // §3.2: NS(u1) = {A:1.25, B:1, C:1} satisfies NS(v1) = {A:1, B:0.5, C:0.5}.
        let u1 = [1.25, 1.0, 1.0];
        let v1 = [1.0, 0.5, 0.5];
        assert!(satisfies(&u1, &v1));
        assert!(!satisfies(&v1, &u1));
    }

    #[test]
    fn paper_satisfiability_score_example() {
        // §3.3: SS(u1, v1) = ((1.25/1) + (1/0.5) + (1/0.5)) / 3 = 1.75.
        let u1 = [1.25, 1.0, 1.0];
        let v1 = [1.0, 0.5, 0.5];
        assert!((satisfiability_score(&u1, &v1) - 1.75).abs() < 1e-6);
    }

    #[test]
    fn satisfaction_is_reflexive() {
        let s = [0.0, 1.5, 2.25, 0.75];
        assert!(satisfies(&s, &s));
    }

    #[test]
    fn zero_query_weight_is_ignored() {
        assert!(satisfies(&[0.0, 5.0], &[0.0, 1.0]));
        assert!(!satisfies(&[0.0, 0.5], &[0.0, 1.0]));
    }

    #[test]
    fn shorter_candidate_treated_as_zero_padded() {
        // Candidate from a 2-label graph, query uses 3 labels.
        assert!(!satisfies(&[1.0, 1.0], &[1.0, 0.0, 0.5]));
        assert!(satisfies(&[1.0, 1.0], &[1.0, 0.0, 0.0]));
    }

    #[test]
    fn epsilon_tolerates_float_noise() {
        let candidate = [1.0 - 0.5 * SATISFACTION_EPSILON];
        let query = [1.0];
        assert!(satisfies(&candidate, &query));
        let clearly_below = [0.9];
        assert!(!satisfies(&clearly_below, &query));
    }

    #[test]
    fn score_of_degenerate_query_is_infinite() {
        assert_eq!(satisfiability_score(&[1.0, 2.0], &[0.0, 0.0]), f32::INFINITY);
        assert_eq!(satisfiability_score(&[], &[]), f32::INFINITY);
    }

    #[test]
    fn score_monotone_in_candidate_weights() {
        let q = [1.0, 2.0];
        let lo = satisfiability_score(&[1.0, 2.0], &q);
        let hi = satisfiability_score(&[2.0, 2.0], &q);
        assert!(hi > lo);
        assert!((lo - 1.0).abs() < 1e-6);
    }

    #[test]
    fn score_handles_short_candidate() {
        let q = [1.0, 1.0, 2.0];
        let s = satisfiability_score(&[3.0], &q);
        assert!((s - 1.0).abs() < 1e-6); // (3/1 + 0 + 0) / 3
    }
}
