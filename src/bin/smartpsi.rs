//! `smartpsi` — command-line front end for the PSI toolkit.
//!
//! ```text
//! smartpsi generate --dataset yeast --seed 42 --out yeast.lg
//! smartpsi stats    --graph yeast.lg
//! smartpsi extract  --graph yeast.lg --size 6 --count 100 --seed 7 --out q6.q
//! smartpsi query    --graph yeast.lg --queries q6.q [--engine smartpsi|optimistic|pessimistic|twothread|turboiso+|enumerate] [--threads N]
//! smartpsi batch    --graph yeast.lg --queries q6.q [--workers N] [--repeat N] [--updates u.up] [--shards N] [--adapt-cadence N] [--adapt-eps F]
//! smartpsi serve    --graph yeast.lg --listen 127.0.0.1:7878 [--workers N] [--max-queue N] [--rate R] [--adapt-cadence N] [--adapt-eps F]
//! smartpsi mine     --graph yeast.lg --threshold 50 --max-edges 3 [--evaluator psi|iso]
//! smartpsi similarity --graph yeast.lg --a 3 --b 17
//! ```
//!
//! Arguments are `--key value` pairs; unknown keys are rejected.
//! Hand-rolled parsing keeps the dependency set to the sanctioned
//! crates.

use std::collections::BTreeMap;
use std::process::ExitCode;

use smartpsi::core::obs::MetricsRecorder;
use smartpsi::core::single::{psi_with_strategy_presig, RunOptions};
use smartpsi::core::twothread::two_threaded_psi;
use smartpsi::core::{
    install_quiet_panic_hook, DeploymentSpec, FailureReport, FaultPlan, RunSpec, SmartPsi,
    SmartPsiConfig, Strategy,
};
use smartpsi::datasets::{PaperDataset, QueryWorkload};
use smartpsi::graph::{Graph, GraphStats};
use smartpsi::matching::{
    psi_by_enumeration, turboiso::turboiso_plus_psi, Engine, PanicIsolated, SearchBudget,
};
use smartpsi::signature::matrix_signatures;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = args.split_first() else {
        print_usage();
        return Ok(());
    };
    let opts = parse_opts(rest)?;
    match cmd.as_str() {
        "generate" => cmd_generate(&opts),
        "stats" => cmd_stats(&opts),
        "extract" => cmd_extract(&opts),
        "query" => cmd_query(&opts),
        "batch" => cmd_batch(&opts),
        "serve" => cmd_serve(&opts),
        "mine" => cmd_mine(&opts),
        "similarity" => cmd_similarity(&opts),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command '{other}' (try 'smartpsi help')")),
    }
}

fn print_usage() {
    println!(
        "smartpsi — pivoted subgraph isomorphism toolkit\n\n\
         commands:\n\
         \x20 generate   --dataset <yeast|cora|human|youtube|twitter|weibo> [--seed N] [--scale F] --out FILE\n\
         \x20 stats      --graph FILE [--sig-store dense|compact]\n\
         \x20            prints graph stats plus the signature-index footprint\n\
         \x20            under the chosen store backend\n\
         \x20 extract    --graph FILE --size N [--count N] [--seed N] --out FILE\n\
         \x20 query      --graph FILE --queries FILE [--engine NAME] [--step-cap N] [--threads N]\n\
         \x20            [--max-retries N] [--node-timeout-ms N] [--fault-seed N]\n\
         \x20            [--sig-store dense|compact]\n\
         \x20            engines: smartpsi (default), optimistic, pessimistic, twothread,\n\
         \x20                     turboiso+, enumerate\n\
         \x20            --threads: smartpsi work-stealing pool size (1 = sequential,\n\
         \x20                       0 = one worker per hardware thread)\n\
         \x20            --max-retries: budget-escalation attempts before the exact\n\
         \x20                       fallback (smartpsi engine, default 2)\n\
         \x20            --node-timeout-ms: per-node wall-clock budget per attempt\n\
         \x20                       (smartpsi engine, default unlimited)\n\
         \x20            --fault-seed: enable the deterministic fault-injection drill\n\
         \x20                       (seeded panics/interrupts/step-burns; see DESIGN.md §11)\n\
         \x20            --profile-out: write per-query QueryProfile JSON to FILE and\n\
         \x20                       print the phase-time table (smartpsi engine)\n\
         \x20 batch      --graph FILE --queries FILE [--workers N] [--repeat N] [--updates FILE]\n\
         \x20            [--shards N] [--sig-store dense|compact]\n\
         \x20            [--adapt-cadence N] [--adapt-eps F]\n\
         \x20            serve the whole query file through a persistent PsiService\n\
         \x20            worker pool (spawned once, shared signatures, cross-query\n\
         \x20            prediction cache); prints per-query answers plus service\n\
         \x20            stats. --workers: pool size (default 4); --repeat: submit\n\
         \x20            the workload N times (default 1) to exercise cache reuse;\n\
         \x20            --updates: evolve the served graph from an update-stream\n\
         \x20            file ('v LABEL' / 'e SRC DST [LABEL]' lines, batches end at\n\
         \x20            'commit') and replay the workload after every batch;\n\
         \x20            --shards: partition the graph into N range shards, each a\n\
         \x20            private context with --workers workers, and scatter-gather\n\
         \x20            every query (halo sized from the workload; see DESIGN.md §15);\n\
         \x20            --adapt-cadence/--adapt-eps: pool per-query feedback and refit\n\
         \x20            the serving models every N queries with an ε exploration floor\n\
         \x20            (off unless given; see DESIGN.md §19)\n\
         \x20 serve      --graph FILE --listen ADDR [--workers N] [--max-queue N]\n\
         \x20            [--rate R] [--burst N] [--deadline-ms N] [--write-timeout-ms N]\n\
         \x20            [--label-capacity N] [--sig-store dense|compact]\n\
         \x20            [--adapt-cadence N] [--adapt-eps F]\n\
         \x20            serve PSI queries over TCP with a line-delimited JSON protocol\n\
         \x20            (one request per line; see DESIGN.md §16 for the grammar and a\n\
         \x20            netcat walkthrough). --listen: e.g. 127.0.0.1:7878 (port 0 picks\n\
         \x20            one); --workers: pool size (default 4); --max-queue: queue-depth\n\
         \x20            shed ceiling (default 256); --rate/--burst: per-connection\n\
         \x20            token-bucket quota (requests/s, default off); --deadline-ms:\n\
         \x20            default per-query deadline; --write-timeout-ms: slow-client\n\
         \x20            write timeout (default 5000); --label-capacity: reserve label\n\
         \x20            ids for labels first seen in wire updates. Drain with\n\
         \x20            '{{\"op\":\"shutdown\",\"id\":0,\"grace_ms\":1000}}'.\n\
         \x20 mine       --graph FILE [--threshold N] [--max-edges N] [--evaluator psi|iso]\n\
         \x20 similarity --graph FILE --a NODE --b NODE"
    );
}

type Opts = BTreeMap<String, String>;

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut m = Opts::new();
    let mut it = args.iter();
    while let Some(k) = it.next() {
        let key = k
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --key, got '{k}'"))?;
        let v = it
            .next()
            .ok_or_else(|| format!("missing value for --{key}"))?;
        if m.insert(key.to_string(), v.clone()).is_some() {
            return Err(format!("duplicate option --{key}"));
        }
    }
    Ok(m)
}

fn req<'a>(opts: &'a Opts, key: &str) -> Result<&'a str, String> {
    opts.get(key)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("missing required option --{key}"))
}

fn opt_parse<T: std::str::FromStr>(opts: &Opts, key: &str, default: T) -> Result<T, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("invalid value for --{key}: '{v}'")),
    }
}

fn load(opts: &Opts) -> Result<Graph, String> {
    let path = req(opts, "graph")?;
    smartpsi::graph::io::load_graph(path).map_err(|e| format!("loading {path}: {e}"))
}

/// `--sig-store dense|compact` (default dense: the paper's bit-exact
/// f32 backend; `compact` serves from the quantized u8 + presence
/// index at ~28% of the memory).
fn sig_store_opt(opts: &Opts) -> Result<smartpsi::signature::SigStoreKind, String> {
    match opts.get("sig-store") {
        None => Ok(smartpsi::signature::SigStoreKind::Dense),
        Some(v) => smartpsi::signature::SigStoreKind::parse(v).ok_or_else(|| {
            format!("invalid value for --sig-store: '{v}' (expected dense|compact)")
        }),
    }
}

/// `--adapt-cadence N` / `--adapt-eps F`: turn on the online α/β
/// adaptation loop (DESIGN.md §19) for a served deployment. Either
/// flag alone enables it, the other taking its default (cadence 64,
/// ε 0.05); cadence 0 refits only on drift. Off when neither is
/// given — frozen serving stays bit-identical to pre-adaptive
/// behavior.
fn adaptive_opt(opts: &Opts) -> Result<Option<smartpsi::core::AdaptiveConfig>, String> {
    if !opts.contains_key("adapt-cadence") && !opts.contains_key("adapt-eps") {
        return Ok(None);
    }
    let cadence: u64 = opt_parse(opts, "adapt-cadence", 64)?;
    let epsilon: f64 = opt_parse(opts, "adapt-eps", 0.05)?;
    if !(0.0..=1.0).contains(&epsilon) {
        return Err("--adapt-eps must be in [0, 1]".into());
    }
    Ok(Some(smartpsi::core::AdaptiveConfig::new(cadence, epsilon)))
}

/// One summary line for an adapting deployment's counters, `None`
/// printed as nothing for frozen deployments.
fn print_adaptive_stats(stats: Option<smartpsi::core::AdaptiveStats>) {
    if let Some(a) = stats {
        println!(
            "adaptation: {} refits (model v{}), {} exploration runs, {} feedback rows \
             pooled ({} in reservoir)",
            a.refits, a.model_version, a.exploration_runs, a.feedback_samples, a.reservoir
        );
    }
}

fn cmd_generate(opts: &Opts) -> Result<(), String> {
    let dataset: PaperDataset = req(opts, "dataset")?.parse()?;
    let seed: u64 = opt_parse(opts, "seed", 42)?;
    let scale: f64 = opt_parse(opts, "scale", 1.0)?;
    let out = req(opts, "out")?;
    let g = if (scale - 1.0).abs() < 1e-12 {
        dataset.generate(seed)
    } else {
        dataset.generate_scaled(scale, seed)
    };
    smartpsi::graph::io::save_graph(&g, out).map_err(|e| e.to_string())?;
    println!("wrote {out}: {}", GraphStats::of(&g));
    Ok(())
}

fn cmd_stats(opts: &Opts) -> Result<(), String> {
    use smartpsi::signature::{default_scale, SigStore, SigStoreKind};
    let g = load(opts)?;
    let kind = sig_store_opt(opts)?;
    let s = GraphStats::of(&g);
    println!("{s}");
    let (_, components) = smartpsi::graph::algo::connected_components(&g);
    println!("components: {components}");
    // Price the signature index under the requested backend (and show
    // the dense baseline so the savings are visible at a glance).
    let depth = SmartPsiConfig::default().depth;
    let dense = matrix_signatures(&g, depth);
    let dense_bytes = SigStore::Dense(dense.clone()).index_bytes();
    let store = SigStore::from_matrix(dense, kind, default_scale(depth));
    if store.kind() == SigStoreKind::Dense {
        println!("signature store: dense ({} bytes)", store.index_bytes());
    } else {
        println!(
            "signature store: {} ({} bytes, {:.1}% of dense's {} bytes)",
            store.kind().name(),
            store.index_bytes(),
            100.0 * store.index_bytes() as f64 / dense_bytes.max(1) as f64,
            dense_bytes
        );
    }
    let mut hist: Vec<(usize, usize)> = s
        .label_histogram
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(l, &c)| (c, l))
        .collect();
    hist.sort_unstable_by(|a, b| b.cmp(a));
    println!("top labels:");
    for (c, l) in hist.iter().take(8) {
        println!("  label {l}: {c} nodes");
    }
    Ok(())
}

fn cmd_extract(opts: &Opts) -> Result<(), String> {
    let g = load(opts)?;
    let size: usize = req(opts, "size")?.parse().map_err(|_| "bad --size")?;
    let count: usize = opt_parse(opts, "count", 100)?;
    let seed: u64 = opt_parse(opts, "seed", 7)?;
    let out = req(opts, "out")?;
    let w = QueryWorkload::extract(&g, size, count, seed)
        .ok_or("graph cannot produce queries of this size")?;
    smartpsi::datasets::save_workload(&w, out).map_err(|e| e.to_string())?;
    println!("wrote {out}: {} queries of size {size}", w.queries.len());
    Ok(())
}

/// Per-query result line, with a failure suffix when nodes failed.
fn print_query_line(i: usize, valid: usize, steps: u64, failures: &FailureReport) {
    if failures.is_empty() {
        println!("query {i}: {valid} valid nodes ({steps} steps)");
    } else {
        println!(
            "query {i}: {valid} valid nodes ({steps} steps, {} failed)",
            failures.len()
        );
    }
}

fn cmd_query(opts: &Opts) -> Result<(), String> {
    let g = load(opts)?;
    let queries = req(opts, "queries")?;
    let w = smartpsi::datasets::load_workload(queries).map_err(|e| e.to_string())?;
    let engine = opts.get("engine").map(|s| s.as_str()).unwrap_or("smartpsi");
    let step_cap: u64 = opt_parse(opts, "step-cap", u64::MAX)?;
    let threads: usize = opt_parse(opts, "threads", 1)?;
    let max_retries: u32 = opt_parse(opts, "max-retries", 2)?;
    let node_timeout_ms: u64 = opt_parse(opts, "node-timeout-ms", 0)?;
    let fault_seed: Option<u64> = match opts.get("fault-seed") {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| format!("invalid value for --fault-seed: '{v}'"))?),
    };
    // Deterministic chaos drill: 1% of nodes panic once, 1% spuriously
    // interrupt once, 1% burn budget once. All one-shot, so the retry
    // ladder must recover every node and the answer stays exact.
    let fault = fault_seed.map(|seed| {
        install_quiet_panic_hook();
        std::sync::Arc::new(FaultPlan::seeded(seed, 0.01, 0.01, 0.01))
    });
    let run_opts = RunOptions {
        fault: fault.clone(),
        ..RunOptions::default()
    };

    let t0 = std::time::Instant::now();
    let mut total_valid = 0usize;
    let mut total_failures = FailureReport::default();
    match engine {
        "smartpsi" => {
            let mut config = SmartPsiConfig {
                fault: fault.clone(),
                sig_store: sig_store_opt(opts)?,
                ..SmartPsiConfig::default()
            };
            config.retry.max_attempts = max_retries;
            if node_timeout_ms > 0 {
                config.node_timeout = Some(std::time::Duration::from_millis(node_timeout_ms));
            }
            let smart = SmartPsi::new(g.clone(), config);
            let profile_out = opts.get("profile-out").cloned();
            // 0 = auto (one worker per hardware thread).
            let base_spec = if threads == 1 {
                RunSpec::new()
            } else {
                RunSpec::new().threads(threads)
            };
            let mut profiles = Vec::new();
            for (i, q) in w.queries.iter().enumerate() {
                // Fresh recorder per query so spans and counters do not
                // accumulate across the workload.
                let spec = if profile_out.is_some() {
                    base_spec.clone().recorder(std::sync::Arc::new(MetricsRecorder::new()))
                } else {
                    base_spec.clone()
                };
                let r = smart.run(q, &spec);
                print_query_line(i, r.count(), r.steps, &r.failures);
                total_valid += r.count();
                total_failures.merge(&r.failures);
                if let Some(p) = r.profile {
                    profiles.push(*p);
                }
            }
            if let Some(path) = profile_out {
                if let Some(last) = profiles.last() {
                    println!("{last}");
                }
                let rows: Vec<String> = profiles.iter().map(|p| p.to_json()).collect();
                let body = format!("[\n{}\n]\n", rows.join(",\n"));
                std::fs::write(&path, body).map_err(|e| format!("writing {path}: {e}"))?;
                println!("wrote {} query profiles to {path}", profiles.len());
            }
        }
        "optimistic" | "pessimistic" => {
            let sigs = matrix_signatures(&g, 2);
            let strategy = if engine == "optimistic" {
                Strategy::optimistic()
            } else {
                Strategy::pessimistic()
            };
            for (i, q) in w.queries.iter().enumerate() {
                let r = psi_with_strategy_presig(&g, &sigs, q, strategy, &run_opts);
                print_query_line(i, r.count(), r.steps, &r.failures);
                total_valid += r.count();
                total_failures.merge(&r.failures);
            }
        }
        "twothread" => {
            for (i, q) in w.queries.iter().enumerate() {
                let r = two_threaded_psi(&g, q, &run_opts);
                print_query_line(i, r.count(), r.steps, &r.failures);
                total_valid += r.count();
                total_failures.merge(&r.failures);
            }
        }
        "turboiso+" => {
            let budget = SearchBudget::steps(step_cap);
            for (i, q) in w.queries.iter().enumerate() {
                let a = turboiso_plus_psi(&g, q, &budget);
                println!("query {i}: {} valid nodes ({} steps)", a.count(), a.steps);
                total_valid += a.count();
            }
        }
        "enumerate" => {
            let budget = SearchBudget::steps(step_cap);
            // The enumeration engine is third-party-shaped code; contain
            // its panics at the matcher boundary instead of letting one
            // broken query kill the whole batch.
            let isolated = PanicIsolated::new(Engine::TurboIso);
            for (i, q) in w.queries.iter().enumerate() {
                let a = psi_by_enumeration(&isolated, &g, q, &budget);
                println!("query {i}: {} valid nodes ({} steps)", a.count(), a.steps);
                if let Some(reason) = isolated.take_panic() {
                    eprintln!("query {i}: engine panicked ({reason}); results are partial");
                    total_failures.panics_recovered += 1;
                }
                total_valid += a.count();
            }
        }
        other => return Err(format!("unknown engine '{other}'")),
    }
    println!(
        "total: {} valid bindings over {} queries in {:.2?}",
        total_valid,
        w.queries.len(),
        t0.elapsed()
    );
    if !total_failures.is_clean() {
        println!(
            "fault summary: {} failed nodes, {} panics recovered, {} budget escalations, {} worker deaths, {} requeued grabs",
            total_failures.len(),
            total_failures.panics_recovered,
            total_failures.escalations,
            total_failures.worker_deaths,
            total_failures.requeued
        );
    }
    Ok(())
}

/// Serve a query file through a persistent [`smartpsi::core::PsiService`]:
/// the worker pool is spawned once, every job shares the precomputed
/// signatures, and repeated query shapes share a prediction cache.
///
/// With `--updates FILE` the deployment evolves: the workload is
/// served once per committed batch in the update stream, with
/// signatures repaired incrementally and a fresh epoch snapshot
/// published between replays.
fn cmd_batch(opts: &Opts) -> Result<(), String> {
    let g = load(opts)?;
    let queries = req(opts, "queries")?;
    let w = smartpsi::datasets::load_workload(queries).map_err(|e| e.to_string())?;
    if w.queries.is_empty() {
        return Err("query file is empty".into());
    }
    let workers: usize = opt_parse(opts, "workers", 4)?;
    let repeat: usize = opt_parse(opts, "repeat", 1)?;
    if workers == 0 || repeat == 0 {
        return Err("--workers and --repeat must be ≥ 1".into());
    }
    let update_batches = match opts.get("updates") {
        None => Vec::new(),
        Some(path) => {
            let batches = smartpsi::graph::io::load_updates(path)
                .map_err(|e| format!("loading {path}: {e}"))?;
            if batches.iter().all(|b| b.is_empty()) {
                return Err(format!("update file {path} holds no updates"));
            }
            batches
        }
    };
    let shards: usize = opt_parse(opts, "shards", 0)?;
    let sig_store = sig_store_opt(opts)?;
    let adaptive = adaptive_opt(opts)?;
    if shards > 1 {
        return cmd_batch_sharded(
            g, &w, shards, workers, repeat, &update_batches, sig_store, adaptive,
        );
    }

    let adapted_spec = |spec: DeploymentSpec| match adaptive {
        Some(cfg) => spec.adaptive_config(cfg),
        None => spec,
    };
    let t_load = std::time::Instant::now();
    let (service, signature_build) = if update_batches.is_empty() {
        let config = SmartPsiConfig { sig_store, ..SmartPsiConfig::default() };
        let smart = SmartPsi::new(g, config);
        let build = smart.signature_build_time();
        let service = smart
            .deploy(&adapted_spec(DeploymentSpec::new().workers(workers)))
            .into_service();
        (service, build)
    } else {
        // Fix the deployment's label space up front so update batches
        // may introduce labels the initial graph has never seen.
        let capacity = update_batches
            .iter()
            .flatten()
            .map(|u| match *u {
                smartpsi::graph::GraphUpdate::AddNode { label } => label as usize + 1,
                smartpsi::graph::GraphUpdate::AddEdge { label, .. } => label as usize + 1,
            })
            .max()
            .unwrap_or(0)
            .max(g.label_count());
        // Build dense (the evolving maintainer seeds from f32 rows)
        // and let the deploy spec pick the serving backend.
        let smart = SmartPsi::new(g, SmartPsiConfig::default());
        let build = smart.signature_build_time();
        let service = smart
            .deploy(&adapted_spec(
                DeploymentSpec::new()
                    .workers(workers)
                    .evolving(capacity)
                    .sig_store(sig_store),
            ))
            .into_service();
        (service, build)
    };
    println!(
        "deployment ready in {:.2?} (signatures {:.2?}, {} store)",
        t_load.elapsed(),
        signature_build,
        sig_store.name()
    );

    let t0 = std::time::Instant::now();
    let mut submitted = 0usize;
    let mut total_valid = 0usize;
    let mut total_failures = FailureReport::default();
    let mut replay = |service: &smartpsi::core::PsiService| {
        // Submit everything up front — the point of the service is
        // that submission is cheap and the pool drains the queue.
        let handles: Vec<(usize, smartpsi::core::JobHandle)> = (0..repeat)
            .flat_map(|_| w.queries.iter().enumerate())
            .map(|(i, q)| (i, service.submit(q.clone(), RunSpec::new())))
            .collect();
        submitted += handles.len();
        for (i, h) in handles {
            let r = h.wait();
            print_query_line(i, r.count(), r.steps, &r.failures);
            total_valid += r.count();
            total_failures.merge(&r.failures);
        }
    };

    replay(&service);
    for batch in &update_batches {
        let report = service
            .apply_update(batch)
            .map_err(|e| format!("applying update batch: {e}"))?;
        println!(
            "epoch {}: +{} nodes, +{} edges ({} duplicates), {} signature rows repaired, \
             {} caches invalidated",
            report.epoch,
            report.nodes_added,
            report.edges_added,
            report.duplicate_edges,
            report.rows_repaired,
            service.stats().cache_invalidations
        );
        replay(&service);
    }

    let elapsed = t0.elapsed();
    let stats = service.stats();
    println!(
        "total: {total_valid} valid bindings over {submitted} jobs in {elapsed:.2?} \
         ({:.1} queries/s, {workers} workers)",
        submitted as f64 / elapsed.as_secs_f64().max(1e-9)
    );
    println!(
        "service: {} served, {} cross-query cache hits, {} shapes, {} requeued, {} panics",
        stats.queries_served,
        stats.cross_query_cache_hits,
        stats.distinct_query_shapes,
        stats.requeued_jobs,
        stats.worker_panics
    );
    if stats.graph_epoch > 0 {
        println!(
            "evolution: final epoch {}, {} cache invalidations",
            stats.graph_epoch, stats.cache_invalidations
        );
    }
    print_adaptive_stats(service.adaptive_stats());
    if !total_failures.is_clean() {
        println!(
            "fault summary: {} failed nodes, {} panics recovered, {} budget escalations",
            total_failures.len(),
            total_failures.panics_recovered,
            total_failures.escalations
        );
    }
    Ok(())
}

/// The `--shards N` arm of [`cmd_batch`]: range-partition the graph
/// into a scatter-gather [`smartpsi::core::ShardedService`] (each
/// shard a private context with its own worker pool) and replay the
/// workload through it. The ghost-node halo is sized from the
/// workload: the maximum pivot eccentricity across queries, so every
/// query passes the service's exactness guard.
#[allow(clippy::too_many_arguments)]
fn cmd_batch_sharded(
    g: Graph,
    w: &QueryWorkload,
    shards: usize,
    workers: usize,
    repeat: usize,
    update_batches: &[Vec<smartpsi::graph::GraphUpdate>],
    sig_store: smartpsi::signature::SigStoreKind,
    adaptive: Option<smartpsi::core::AdaptiveConfig>,
) -> Result<(), String> {
    use smartpsi::core::{ShardSpec, ShardedService};

    let halo = w
        .queries
        .iter()
        .map(|q| {
            q.graph()
                .bfs_distances(q.pivot())
                .into_iter()
                .filter(|&d| d != u32::MAX)
                .max()
                .unwrap_or(0)
        })
        .max()
        .unwrap_or(1)
        .max(1);
    let mut spec = ShardSpec::new(shards)
        .workers_per_shard(workers)
        .halo_depth(halo);
    if let Some(cfg) = adaptive {
        spec = spec.adaptive(cfg);
    }

    let t_load = std::time::Instant::now();
    let service = if update_batches.is_empty() {
        let config = SmartPsiConfig { sig_store, ..SmartPsiConfig::default() };
        let mut dspec = DeploymentSpec::new().shards(shards).workers(workers).halo(halo);
        if let Some(cfg) = adaptive {
            dspec = dspec.adaptive_config(cfg);
        }
        SmartPsi::new(g, config).deploy(&dspec).into_sharded()
    } else {
        let capacity = update_batches
            .iter()
            .flatten()
            .map(|u| match *u {
                smartpsi::graph::GraphUpdate::AddNode { label } => label as usize + 1,
                smartpsi::graph::GraphUpdate::AddEdge { label, .. } => label as usize + 1,
            })
            .max()
            .unwrap_or(0)
            .max(g.label_count());
        let config = SmartPsiConfig { sig_store, ..SmartPsiConfig::default() };
        ShardedService::new_evolving(g, config, capacity, &spec)
    };
    println!(
        "sharded deployment ready in {:.2?} ({shards} shards × {workers} workers, halo depth {halo}, {} store)",
        t_load.elapsed(),
        sig_store.name()
    );

    let t0 = std::time::Instant::now();
    let mut submitted = 0usize;
    let mut total_valid = 0usize;
    let mut total_failures = FailureReport::default();
    let mut replay = |service: &ShardedService| -> Result<(), String> {
        let handles: Vec<_> = (0..repeat)
            .flat_map(|_| w.queries.iter().enumerate())
            .map(|(i, q)| {
                service
                    .submit(q.clone(), RunSpec::new())
                    .map(|h| (i, h))
                    .map_err(|e| format!("submitting query {i}: {e}"))
            })
            .collect::<Result<_, _>>()?;
        submitted += handles.len();
        for (i, h) in handles {
            let r = h.wait();
            print_query_line(i, r.count(), r.steps, &r.failures);
            total_valid += r.count();
            total_failures.merge(&r.failures);
        }
        Ok(())
    };

    replay(&service)?;
    for batch in update_batches {
        let report = service
            .apply_update(batch)
            .map_err(|e| format!("applying update batch: {e}"))?;
        println!(
            "update: +{} nodes, +{} edges ({} duplicates), {} signature rows repaired, \
             shards {:?} republished (epochs {:?})",
            report.nodes_added,
            report.edges_added,
            report.duplicate_edges,
            report.rows_repaired,
            report.affected_shards,
            report.shard_epochs
        );
        replay(&service)?;
    }

    let elapsed = t0.elapsed();
    let stats = service.stats();
    let fanout = service
        .metrics()
        .counter(smartpsi::core::obs::Counter::ShardFanout);
    println!(
        "total: {total_valid} valid bindings over {submitted} jobs in {elapsed:.2?} \
         ({:.1} queries/s, {shards}×{workers} workers)",
        submitted as f64 / elapsed.as_secs_f64().max(1e-9)
    );
    println!(
        "scatter-gather: {} shard jobs fanned out ({:.2} shards/query), epochs {:?}",
        fanout,
        fanout as f64 / submitted.max(1) as f64,
        service.shard_epochs()
    );
    println!(
        "shards: {} served, {} cross-query cache hits, {} shapes, {} requeued, {} panics",
        stats.queries_served,
        stats.cross_query_cache_hits,
        stats.distinct_query_shapes,
        stats.requeued_jobs,
        stats.worker_panics
    );
    print_adaptive_stats(service.adaptive_stats());
    if !total_failures.is_clean() {
        println!(
            "fault summary: {} failed nodes, {} panics recovered, {} budget escalations",
            total_failures.len(),
            total_failures.panics_recovered,
            total_failures.escalations
        );
    }
    Ok(())
}

/// `smartpsi serve`: the network front door. Builds an evolving
/// deployment (so wire `update` requests are accepted), binds a
/// [`smartpsi::core::NetServer`] on `--listen`, and blocks until a
/// client sends the protocol `shutdown` op, then reports the drain.
fn cmd_serve(opts: &Opts) -> Result<(), String> {
    use std::time::Duration;

    let g = load(opts)?;
    let listen = req(opts, "listen")?.to_string();
    let workers: usize = opt_parse(opts, "workers", 4)?;
    if workers == 0 {
        return Err("--workers must be ≥ 1".into());
    }
    let max_queue: usize = opt_parse(opts, "max-queue", 256)?;
    let rate: f64 = opt_parse(opts, "rate", 0.0)?;
    let burst: f64 = opt_parse(opts, "burst", 32.0)?;
    let deadline_ms: u64 = opt_parse(opts, "deadline-ms", 0)?;
    let write_timeout_ms: u64 = opt_parse(opts, "write-timeout-ms", 5_000)?;
    let label_capacity: usize = opt_parse(opts, "label-capacity", 0)?;
    if rate < 0.0 || burst < 0.0 {
        return Err("--rate and --burst must be ≥ 0".into());
    }

    let t_load = std::time::Instant::now();
    // Always deploy evolving so wire updates work; --label-capacity
    // reserves extra label ids beyond the file's.
    let sig_store = sig_store_opt(opts)?;
    let adaptive = adaptive_opt(opts)?;
    let capacity = label_capacity.max(g.label_count());
    let smart = SmartPsi::new(g, SmartPsiConfig::default());
    let build = smart.signature_build_time();
    let mut dspec = DeploymentSpec::new()
        .workers(workers)
        .evolving(capacity)
        .sig_store(sig_store);
    if let Some(cfg) = adaptive {
        dspec = dspec.adaptive_config(cfg);
    }
    let service = smart.deploy(&dspec).into_service();
    println!(
        "deployment ready in {:.2?} (signatures {:.2?}, {workers} workers, {} store{})",
        t_load.elapsed(),
        build,
        sig_store.name(),
        match adaptive {
            Some(cfg) => format!(", adapting every {} queries at ε {}", cfg.cadence, cfg.epsilon),
            None => String::new(),
        }
    );

    let cfg = smartpsi::core::NetServerConfig {
        max_queue,
        quota_rate: rate,
        quota_burst: burst,
        default_deadline: (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms)),
        write_timeout: Duration::from_millis(write_timeout_ms.max(1)),
        ..Default::default()
    };
    let mut server = smartpsi::core::NetServer::bind(service, listen.as_str(), cfg)
        .map_err(|e| format!("binding {listen}: {e}"))?;
    let addr = server.local_addr();
    println!("listening on {addr} (line-delimited JSON; see DESIGN.md §16)");
    println!(
        "try: echo '{{\"op\":\"stats\",\"id\":1}}' | nc {} {}",
        addr.ip(),
        addr.port()
    );
    let report = server.wait();
    println!(
        "drained: {} jobs completed, {} aborted past deadline",
        report.drained, report.aborted
    );
    Ok(())
}

fn cmd_mine(opts: &Opts) -> Result<(), String> {
    use smartpsi::fsm::{IsoSupport, Miner, MinerConfig, PsiSupport};
    let g = load(opts)?;
    let threshold: usize = opt_parse(opts, "threshold", (g.node_count() / 50).max(2))?;
    let max_edges: usize = opt_parse(opts, "max-edges", 3)?;
    let evaluator = opts.get("evaluator").map(|s| s.as_str()).unwrap_or("psi");
    let config = MinerConfig {
        threshold,
        max_edges,
        max_candidates_per_level: 10_000,
    };
    let miner = Miner::new(&g, config);
    let t0 = std::time::Instant::now();
    let out = match evaluator {
        "psi" => {
            let sigs = matrix_signatures(&g, 2);
            miner.mine(&mut PsiSupport::new(&g, &sigs))
        }
        "iso" => miner.mine(&mut IsoSupport::new(&g, 100_000_000)),
        other => return Err(format!("unknown evaluator '{other}'")),
    };
    println!(
        "mined {} frequent patterns (threshold {threshold}, ≤{max_edges} edges) in {:.2?}{}",
        out.frequent.len(),
        t0.elapsed(),
        if out.exact { "" } else { " [inexact: budget hit]" }
    );
    for (p, s) in out.frequent.iter().take(20) {
        println!(
            "  {} nodes / {} edges, labels {:?}: support {s}",
            p.node_count(),
            p.edge_count(),
            p.graph().labels()
        );
    }
    if out.frequent.len() > 20 {
        println!("  … and {} more", out.frequent.len() - 20);
    }
    Ok(())
}

fn cmd_similarity(opts: &Opts) -> Result<(), String> {
    let g = load(opts)?;
    let a: u32 = req(opts, "a")?.parse().map_err(|_| "bad --a")?;
    let b: u32 = req(opts, "b")?.parse().map_err(|_| "bad --b")?;
    if a as usize >= g.node_count() || b as usize >= g.node_count() {
        return Err("node id out of range".into());
    }
    let sigs = matrix_signatures(&g, 2);
    let s = smartpsi::apps::pivoted_similarity(&g, &sigs, a, b, &Default::default());
    println!("pivoted-subgraph similarity of {a} and {b}: {s:.3}");
    Ok(())
}
