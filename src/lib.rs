//! # smartpsi
//!
//! A complete Rust implementation of **Pivoted Subgraph Isomorphism**
//! after the EDBT 2019 paper *"Pivoted Subgraph Isomorphism: The
//! Optimist, the Pessimist and the Realist"*.
//!
//! Given a query graph `S` with a designated *pivot* node and a data
//! graph `G`, a PSI query returns the distinct data nodes that bind the
//! pivot in at least one subgraph-isomorphic embedding of `S` — one
//! witness per node instead of the exponentially many embeddings a
//! classic matcher enumerates.
//!
//! This facade crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`graph`] | `psi-graph` | CSR labeled graphs, builders, queries, I/O |
//! | [`signature`] | `psi-signature` | neighborhood signatures (§3.1–3.2) |
//! | [`datasets`] | `psi-datasets` | paper-matched synthetic datasets, RWR query extraction |
//! | [`matching`] | `psi-match` | Ullmann / VF2 / TurboIso(+) / CFL-Match baselines |
//! | [`ml`] | `psi-ml` | Random Forest, SVM, MLP (from scratch) |
//! | [`core`] | `psi-core` | optimistic/pessimistic evaluators, two-threaded baseline, **SmartPSI** |
//! | [`fsm`] | `psi-fsm` | frequent subgraph mining with PSI-based frequency evaluation |
//! | [`apps`] | `psi-apps` | §2.2 applications: neighborhood patterns, query discovery, node similarity |
//!
//! ## Quickstart
//!
//! ```
//! use smartpsi::core::{RunSpec, SmartPsi, SmartPsiConfig};
//! use smartpsi::datasets::{PaperDataset, QueryWorkload};
//!
//! // A Yeast-like protein-interaction graph.
//! let g = PaperDataset::Yeast.generate_scaled(0.2, 42);
//! // Load it into SmartPSI (precomputes all node signatures).
//! let engine = SmartPsi::new(g.clone(), SmartPsiConfig::default());
//! // Extract a 5-node pivoted query the way the paper does.
//! let workload = QueryWorkload::extract(&g, 5, 1, 7).unwrap();
//! let result = engine.run(&workload.queries[0], &RunSpec::new());
//! println!("{} valid bindings", result.count());
//! ```
//!
//! For a *stream* of queries, spawn a persistent service instead of
//! paying per-query pool setup:
//! `engine.deploy(&DeploymentSpec::new().workers(n))` resolves a
//! [`core::DeploymentSpec`] — worker count, sharding, evolving
//! updates, dense vs compact signature store — into a live
//! [`core::Deployment`] with a submission queue, shared signatures,
//! and a cross-query prediction cache (see the README's "Serving a
//! query stream" walkthrough and the `smartpsi batch` subcommand).

#![warn(missing_docs)]

pub use psi_apps as apps;
pub use psi_core as core;
pub use psi_datasets as datasets;
pub use psi_fsm as fsm;
pub use psi_graph as graph;
pub use psi_match as matching;
pub use psi_ml as ml;
pub use psi_signature as signature;
