//! Determinism and limit-observance tests for the work-stealing
//! parallel SmartPSI executor (`psi_core::engine::exec`).
//!
//! The executor's contract: the sorted `valid` vector and the
//! candidate/trained counts are identical for every worker count, grab
//! size, cache mode and repeated run (only cost counters may vary),
//! and a global deadline or cancel flag stops the whole pool promptly,
//! reporting untouched candidates as unresolved.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

use smartpsi::core::evaluator::{NodeEvaluator, QueryContext};
use smartpsi::core::obs::Counter;
use smartpsi::core::{
    heuristic_plan, EvalLimits, PsiResult, RunSpec, SmartPsi, SmartPsiConfig, Strategy, Verdict,
};
use smartpsi::datasets::{generators, rwr};
use smartpsi::graph::PivotedQuery;

/// Stage counter from the result's attached profile (0 if absent).
fn counter(r: &PsiResult, c: Counter) -> u64 {
    r.profile.as_ref().map_or(0, |p| p.counter(c))
}

fn deployment() -> (SmartPsi, PivotedQuery) {
    let g = generators::erdos_renyi(600, 2600, 3, 17);
    let q = rwr::extract_query_seeded(&g, 5, 11).expect("query extraction");
    let cfg = SmartPsiConfig {
        min_candidates_for_ml: 10, // force the ML + pool path
        ..SmartPsiConfig::default()
    };
    (SmartPsi::new(g, cfg), q)
}

#[test]
fn valid_set_is_identical_across_worker_counts_and_runs() {
    let (smart, q) = deployment();
    let baseline = smart.run(&q, &RunSpec::new());
    assert!(baseline.candidates >= 10, "needs the ML path");
    for threads in [1usize, 2, 4, 8] {
        for run in 0..2 {
            let r = smart.run(&q, &RunSpec::new().threads(threads));
            assert_eq!(
                r.valid, baseline.valid,
                "threads={threads} run={run}: valid set must be byte-identical"
            );
            assert_eq!(r.candidates, baseline.candidates);
            assert_eq!(r.unresolved, 0, "unlimited run resolves everything");
            assert_eq!(
                counter(&r, Counter::TrainedNodes),
                counter(&baseline, Counter::TrainedNodes),
                "the session trains once with a fixed seed"
            );
            assert_eq!(
                counter(&r, Counter::TrainedNodes)
                    + counter(&r, Counter::ResolvedS1)
                    + counter(&r, Counter::RecoveredS2)
                    + counter(&r, Counter::RecoveredS3),
                r.candidates as u64,
                "stage accounting is complete at threads={threads}"
            );
        }
    }
}

#[test]
fn valid_set_is_invariant_to_grab_size_and_cache_mode() {
    let (smart, q) = deployment();
    let baseline = smart.run(&q, &RunSpec::new()).valid;
    for grab in [1usize, 3, 64] {
        for shared in [true, false] {
            let spec = RunSpec::new().threads(4).grab(grab).shared_cache(shared);
            let r = smart.run(&q, &spec);
            assert_eq!(r.valid, baseline, "grab={grab} shared_cache={shared}");
        }
    }
}

#[test]
fn pre_set_cancel_flag_stops_every_worker_before_any_work() {
    let (smart, q) = deployment();
    let flag = Arc::new(AtomicBool::new(true));
    let spec = RunSpec::new()
        .threads(8)
        .limits(EvalLimits::unlimited().with_cancel(flag));
    let t0 = Instant::now();
    let r = smart.run(&q, &spec);
    assert!(r.valid.is_empty());
    assert_eq!(r.unresolved, r.candidates, "nothing resolves");
    assert_eq!(counter(&r, Counter::TrainedNodes), 0, "training observes the flag too");
    // Not a tight bound — just "did not evaluate the whole workload".
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "a cancelled pool must return promptly"
    );
}

#[test]
fn expired_deadline_reports_all_candidates_unresolved() {
    let (smart, q) = deployment();
    let spec = RunSpec::new()
        .threads(4)
        .limits(EvalLimits::unlimited().with_deadline(Instant::now() - Duration::from_millis(1)));
    let r = smart.run(&q, &spec);
    assert_eq!(r.unresolved, r.candidates);
    assert!(r.valid.is_empty());
}

/// A deadline landing mid-evaluation may stop the pool anywhere; the
/// report must stay internally consistent either way: every reported
/// valid node is truly valid (verdicts are exact), and every candidate
/// is accounted for as trained, staged or unresolved.
#[test]
fn mid_run_deadline_keeps_the_report_consistent() {
    let (smart, q) = deployment();
    let exact: Vec<_> = smart.run(&q, &RunSpec::new()).valid;
    for micros in [50u64, 500, 5_000, 50_000] {
        let spec = RunSpec::new().threads(4).limits(
            EvalLimits::unlimited().with_deadline(Instant::now() + Duration::from_micros(micros)),
        );
        let r = smart.run(&q, &spec);
        assert!(
            r.valid.iter().all(|u| exact.contains(u)),
            "deadline={micros}µs: partial answers are never wrong"
        );
        assert_eq!(
            counter(&r, Counter::TrainedNodes)
                + counter(&r, Counter::ResolvedS1)
                + counter(&r, Counter::RecoveredS2)
                + counter(&r, Counter::RecoveredS3)
                + r.unresolved as u64,
            r.candidates as u64,
            "deadline={micros}µs: complete accounting"
        );
        if r.unresolved == 0 {
            assert_eq!(r.valid, exact, "fully resolved run is exact");
        }
    }
}

/// The cancel flag interrupts an in-flight node evaluation (the
/// `Verdict::Interrupted` path the pool's unresolved accounting relies
/// on), not just the grab boundaries.
#[test]
fn cancel_flag_interrupts_a_single_evaluation() {
    // Single label and high density leave signature pruning toothless,
    // so the exhaustive search has real work to interrupt.
    let g = generators::erdos_renyi(150, 2800, 1, 23);
    let q = rwr::extract_query_seeded(&g, 8, 3).expect("query");
    let sigs = smartpsi::signature::matrix_signatures(&g, 2);
    let ctx = QueryContext::new(q.clone(), 2);
    let plan = ctx.compile(&heuristic_plan(&g, &q));
    let mut ev = NodeEvaluator::new(&g, &sigs);
    // Pick the most expensive candidate so the search is guaranteed to
    // outlive the tracker's 256-step cancel-polling window.
    let candidate = smartpsi::core::single::pivot_candidates(&g, &q)
        .into_iter()
        .max_by_key(|&u| {
            ev.evaluate(&ctx, &plan, u, Strategy::pessimistic(), &EvalLimits::unlimited()).1
        })
        .expect("at least one candidate");
    let (_, unlimited_steps) =
        ev.evaluate(&ctx, &plan, candidate, Strategy::pessimistic(), &EvalLimits::unlimited());
    assert!(
        unlimited_steps > 256,
        "test graph too easy ({unlimited_steps} steps); grow it"
    );
    let flag = Arc::new(AtomicBool::new(true));
    let limits = EvalLimits::unlimited().with_cancel(flag);
    let (verdict, steps) = ev.evaluate(&ctx, &plan, candidate, Strategy::pessimistic(), &limits);
    assert_eq!(verdict, Verdict::Interrupted, "pre-set flag interrupts");
    // The tracker polls the flag every 256 steps; one evaluation may
    // not overshoot that window by more than a batch.
    assert!(steps <= 512, "interrupted after {steps} steps");
}
