//! Integration tests for the `smartpsi` CLI binary: the full
//! generate → stats → extract → query → mine pipeline through the
//! command-line surface.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_smartpsi")
}

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("smartpsi_cli_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn run(args: &[&str]) -> Output {
    Command::new(bin()).args(args).output().expect("spawn cli")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

#[test]
fn help_lists_commands() {
    let o = run(&["help"]);
    assert!(o.status.success());
    let s = stdout(&o);
    for cmd in ["generate", "stats", "extract", "query", "mine", "similarity"] {
        assert!(s.contains(cmd), "help missing {cmd}");
    }
}

#[test]
fn unknown_command_fails() {
    let o = run(&["frobnicate"]);
    assert!(!o.status.success());
    assert!(String::from_utf8_lossy(&o.stderr).contains("unknown command"));
}

#[test]
fn full_pipeline_via_cli() {
    let dir = tmpdir("pipeline");
    let graph = dir.join("g.lg");
    let queries = dir.join("q.q");
    let graph_s = graph.to_str().unwrap();
    let queries_s = queries.to_str().unwrap();

    // generate
    let o = run(&[
        "generate", "--dataset", "yeast", "--scale", "0.1", "--seed", "5", "--out", graph_s,
    ]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    assert!(stdout(&o).contains("|V|="));

    // stats
    let o = run(&["stats", "--graph", graph_s]);
    assert!(o.status.success());
    assert!(stdout(&o).contains("components:"));

    // extract
    let o = run(&[
        "extract", "--graph", graph_s, "--size", "4", "--count", "5", "--out", queries_s,
    ]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));

    // query with two engines; answers must agree.
    let smart = run(&["query", "--graph", graph_s, "--queries", queries_s]);
    assert!(smart.status.success());
    let pess = run(&[
        "query", "--graph", graph_s, "--queries", queries_s, "--engine", "pessimistic",
    ]);
    assert!(pess.status.success());
    let totals = |s: &str| {
        s.lines()
            .find(|l| l.starts_with("total:"))
            .map(|l| l.split_whitespace().nth(1).unwrap().to_string())
    };
    assert_eq!(totals(&stdout(&smart)), totals(&stdout(&pess)));

    // mine
    let o = run(&[
        "mine", "--graph", graph_s, "--threshold", "3", "--max-edges", "2",
    ]);
    assert!(o.status.success(), "{}", String::from_utf8_lossy(&o.stderr));
    assert!(stdout(&o).contains("frequent patterns"));

    // similarity
    let o = run(&["similarity", "--graph", graph_s, "--a", "0", "--b", "1"]);
    assert!(o.status.success());
    assert!(stdout(&o).contains("similarity"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_required_option_is_reported() {
    let o = run(&["generate", "--dataset", "yeast"]);
    assert!(!o.status.success());
    assert!(String::from_utf8_lossy(&o.stderr).contains("--out"));
}

#[test]
fn bad_engine_is_reported() {
    let dir = tmpdir("badengine");
    let graph = dir.join("g.lg");
    let queries = dir.join("q.q");
    run(&[
        "generate", "--dataset", "cora", "--scale", "0.05", "--out", graph.to_str().unwrap(),
    ]);
    run(&[
        "extract", "--graph", graph.to_str().unwrap(), "--size", "3", "--count", "2", "--out",
        queries.to_str().unwrap(),
    ]);
    let o = run(&[
        "query", "--graph", graph.to_str().unwrap(), "--queries", queries.to_str().unwrap(),
        "--engine", "nonsense",
    ]);
    assert!(!o.status.success());
    assert!(String::from_utf8_lossy(&o.stderr).contains("unknown engine"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn duplicate_and_malformed_options_rejected() {
    let o = run(&["stats", "--graph", "a", "--graph", "b"]);
    assert!(!o.status.success());
    assert!(String::from_utf8_lossy(&o.stderr).contains("duplicate"));
    let o = run(&["stats", "graph"]);
    assert!(!o.status.success());
}
