//! Workspace-level property tests over the full pipeline.

use proptest::prelude::*;
use smartpsi::core::single::{psi_with_strategy, RunOptions};
use smartpsi::core::{RunSpec, SmartPsi, SmartPsiConfig, Strategy as PsiStrategy};
use smartpsi::graph::builder::graph_from;
use smartpsi::graph::Graph;
use smartpsi::matching::{psi_by_enumeration, Engine, SearchBudget};
use smartpsi::signature::{matrix_signatures, satisfies};

fn random_graph() -> impl Strategy<Value = Graph> {
    (8usize..=16, any::<u64>()).prop_map(|(n, seed)| {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let labels: Vec<u16> = (0..n).map(|_| rng.gen_range(0..4)).collect();
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.gen_bool(0.3) {
                    edges.push((u, v));
                }
            }
        }
        graph_from(&labels, &edges).expect("valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Proposition 3.2 end-to-end: a node whose signature does not
    /// satisfy the query pivot's signature is never a PSI answer.
    #[test]
    fn prop32_pruning_is_safe(g in random_graph(), size in 2usize..=4, seed in any::<u64>()) {
        let Some(q) = smartpsi::datasets::rwr::extract_query_seeded(&g, size, seed) else {
            return Ok(());
        };
        let answer = psi_by_enumeration(&Engine::Vf2, &g, &q, &SearchBudget::unlimited());
        let gsigs = matrix_signatures(&g, 2);
        let qsigs = matrix_signatures(q.graph(), 2);
        let pivot_row = qsigs.row(q.pivot());
        for &u in &answer.valid {
            prop_assert!(
                satisfies(gsigs.row(u), pivot_row),
                "valid node {u} would be pruned by Prop 3.2"
            );
        }
    }

    /// PSI answers are invariant to the pivot-preserving strategy used.
    #[test]
    fn strategies_are_interchangeable(g in random_graph(), size in 2usize..=4, seed in any::<u64>()) {
        let Some(q) = smartpsi::datasets::rwr::extract_query_seeded(&g, size, seed) else {
            return Ok(());
        };
        let opts = RunOptions::default();
        let a = psi_with_strategy(&g, &q, PsiStrategy::optimistic(), &opts).valid;
        let b = psi_with_strategy(&g, &q, PsiStrategy::plain_optimistic(), &opts).valid;
        let c = psi_with_strategy(&g, &q, PsiStrategy::pessimistic(), &opts).valid;
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
    }

    /// SmartPSI is exact whatever its configuration toggles.
    #[test]
    fn smartpsi_exact_under_all_toggles(
        g in random_graph(),
        size in 2usize..=4,
        seed in any::<u64>(),
        beta in any::<bool>(),
        cache in any::<bool>(),
        recovery in any::<bool>(),
    ) {
        let Some(q) = smartpsi::datasets::rwr::extract_query_seeded(&g, size, seed) else {
            return Ok(());
        };
        let oracle = psi_by_enumeration(&Engine::Vf2, &g, &q, &SearchBudget::unlimited()).valid;
        let cfg = SmartPsiConfig {
            min_candidates_for_ml: 4, // force ML path even on tiny graphs
            max_train_nodes: 6,
            enable_beta: beta,
            enable_cache: cache,
            enable_recovery: recovery,
            ..SmartPsiConfig::default()
        };
        let smart = SmartPsi::new(g.clone(), cfg);
        prop_assert_eq!(smart.run(&q, &RunSpec::new()).valid, oracle);
    }

    /// Answers never include nodes with the wrong label or insufficient
    /// degree, and never duplicate.
    #[test]
    fn answers_are_wellformed(g in random_graph(), size in 2usize..=4, seed in any::<u64>()) {
        let Some(q) = smartpsi::datasets::rwr::extract_query_seeded(&g, size, seed) else {
            return Ok(());
        };
        let r = psi_with_strategy(&g, &q, PsiStrategy::pessimistic(), &RunOptions::default());
        let pivot_deg = q.graph().degree(q.pivot());
        for w in r.valid.windows(2) {
            prop_assert!(w[0] < w[1], "sorted, distinct");
        }
        for &u in &r.valid {
            prop_assert_eq!(g.label(u), q.pivot_label());
            prop_assert!(g.degree(u) >= pivot_deg);
        }
    }

    /// Differential harness over every executor: the work-stealing
    /// pool, the static-chunk parallel driver, the sequential SmartPSI
    /// evaluator and both single-strategy runners return the same
    /// valid set on random labeled graphs.
    #[test]
    fn all_executors_agree(
        g in random_graph(),
        size in 2usize..=4,
        seed in any::<u64>(),
        threads in 1usize..=4,
    ) {
        let Some(q) = smartpsi::datasets::rwr::extract_query_seeded(&g, size, seed) else {
            return Ok(());
        };
        let opts = RunOptions::default();
        let optimistic = psi_with_strategy(&g, &q, PsiStrategy::optimistic(), &opts).valid;
        let pessimistic = psi_with_strategy(&g, &q, PsiStrategy::pessimistic(), &opts).valid;
        prop_assert_eq!(&optimistic, &pessimistic);
        let cfg = SmartPsiConfig {
            min_candidates_for_ml: 4, // force the ML path even on tiny graphs
            max_train_nodes: 6,
            ..SmartPsiConfig::default()
        };
        let smart = SmartPsi::new(g.clone(), cfg);
        let seq = smart.run(&q, &RunSpec::new());
        let ws = smart.run(&q, &RunSpec::new().threads(threads));
        let chunked = smart.run(&q, &RunSpec::new().static_chunks(threads));
        prop_assert_eq!(&seq.valid, &optimistic);
        prop_assert_eq!(&ws.valid, &optimistic);
        prop_assert_eq!(&chunked.valid, &optimistic);
        prop_assert_eq!(ws.unresolved, 0);
        prop_assert_eq!(ws.candidates, seq.candidates);
    }

    /// Re-pivoting the query changes the question but every answer set
    /// stays consistent with enumeration.
    #[test]
    fn repivoting_stays_consistent(g in random_graph(), size in 3usize..=4, seed in any::<u64>()) {
        let Some(q) = smartpsi::datasets::rwr::extract_query_seeded(&g, size, seed) else {
            return Ok(());
        };
        for pivot in 0..q.size() as u32 {
            let qp = q.with_pivot(pivot).expect("valid pivot");
            let oracle = psi_by_enumeration(&Engine::Vf2, &g, &qp, &SearchBudget::unlimited()).valid;
            let fast = psi_with_strategy(&g, &qp, PsiStrategy::pessimistic(), &RunOptions::default()).valid;
            prop_assert_eq!(fast, oracle, "pivot {}", pivot);
        }
    }
}
