//! End-to-end integration tests: generate datasets, extract query
//! workloads, answer them with every engine in the workspace, and
//! cross-check all answers.

use smartpsi::core::single::{psi_with_strategy_presig, RunOptions};
use smartpsi::core::twothread::two_threaded_psi;
use smartpsi::core::{RunSpec, SmartPsi, SmartPsiConfig, Strategy};
use smartpsi::datasets::{PaperDataset, QueryWorkload};
use smartpsi::graph::GraphStats;
use smartpsi::matching::{psi_by_enumeration, turboiso::turboiso_plus_psi, Engine, SearchBudget};
use smartpsi::signature::matrix_signatures;

/// Every PSI implementation in the workspace must return the same
/// answer set on a shared workload.
#[test]
fn all_engines_agree_end_to_end() {
    let g = PaperDataset::Yeast.generate_scaled(0.15, 7);
    let sigs = matrix_signatures(&g, 2);
    let smart = SmartPsi::new(g.clone(), SmartPsiConfig::default());
    let opts = RunOptions::default();
    let budget = SearchBudget::unlimited();

    let mut checked = 0;
    for size in 3..=6 {
        let Some(w) = QueryWorkload::extract(&g, size, 4, size as u64) else {
            continue;
        };
        for q in &w.queries {
            let oracle = psi_by_enumeration(&Engine::Vf2, &g, q, &budget).valid;
            assert_eq!(
                psi_by_enumeration(&Engine::Ullmann, &g, q, &budget).valid,
                oracle
            );
            assert_eq!(
                psi_by_enumeration(&Engine::TurboIso, &g, q, &budget).valid,
                oracle
            );
            assert_eq!(
                psi_by_enumeration(&Engine::CflMatch, &g, q, &budget).valid,
                oracle
            );
            assert_eq!(turboiso_plus_psi(&g, q, &budget).valid, oracle);
            assert_eq!(
                psi_with_strategy_presig(&g, &sigs, q, Strategy::optimistic(), &opts).valid,
                oracle
            );
            assert_eq!(
                psi_with_strategy_presig(&g, &sigs, q, Strategy::pessimistic(), &opts).valid,
                oracle
            );
            assert_eq!(two_threaded_psi(&g, q, &opts).valid, oracle);
            assert_eq!(smart.run(q, &RunSpec::new()).valid, oracle);
            checked += 1;
        }
    }
    assert!(checked >= 8, "workloads too small: {checked}");
}

/// The ML path of SmartPSI (forced on) must stay exact on a graph large
/// enough to actually train the models.
#[test]
fn smartpsi_ml_path_exact_on_social_graph() {
    let g = PaperDataset::Youtube.generate_scaled(0.05, 3);
    let cfg = SmartPsiConfig {
        min_candidates_for_ml: 10,
        ..SmartPsiConfig::default()
    };
    let smart = SmartPsi::new(g.clone(), cfg);
    let budget = SearchBudget::unlimited();
    for size in [4usize, 5] {
        let Some(w) = QueryWorkload::extract(&g, size, 3, size as u64) else {
            continue;
        };
        for q in &w.queries {
            let r = smart.run(q, &RunSpec::new());
            let oracle = psi_by_enumeration(&Engine::TurboIso, &g, q, &budget).valid;
            assert_eq!(r.valid, oracle, "size {size}");
            assert_eq!(r.unresolved, 0);
        }
    }
}

/// Graph I/O round-trips through the text format and the reloaded
/// graph answers queries identically.
#[test]
fn io_roundtrip_preserves_psi_answers() {
    let g = PaperDataset::Cora.generate_scaled(0.2, 5);
    let mut buf = Vec::new();
    smartpsi::graph::io::write_graph(&g, &mut buf).unwrap();
    let g2 = smartpsi::graph::io::read_graph(buf.as_slice()).unwrap();
    assert_eq!(GraphStats::of(&g), GraphStats::of(&g2));
    let q = smartpsi::datasets::rwr::extract_query_seeded(&g, 4, 1).unwrap();
    let budget = SearchBudget::unlimited();
    assert_eq!(
        psi_by_enumeration(&Engine::Vf2, &g, &q, &budget).valid,
        psi_by_enumeration(&Engine::Vf2, &g2, &q, &budget).valid
    );
}

/// FSM mining with the PSI evaluator equals mining with the iso
/// evaluator on a generated dataset.
#[test]
fn fsm_evaluators_agree_on_generated_graph() {
    use smartpsi::fsm::{canonical_code, IsoSupport, Miner, MinerConfig, PsiSupport};
    let g = PaperDataset::Yeast.generate_scaled(0.08, 9);
    let sigs = matrix_signatures(&g, 2);
    let config = MinerConfig {
        threshold: 3,
        max_edges: 2,
        max_candidates_per_level: 500,
    };
    let miner = Miner::new(&g, config);
    let a = miner.mine(&mut IsoSupport::new(&g, u64::MAX));
    let b = miner.mine(&mut PsiSupport::new(&g, &sigs));
    let codes = |o: &smartpsi::fsm::MiningOutcome| {
        let mut v: Vec<_> = o.frequent.iter().map(|(p, s)| (canonical_code(p), *s)).collect();
        v.sort();
        v
    };
    assert_eq!(codes(&a), codes(&b));
}

/// Signature computation methods must agree at depth 1 and the matrix
/// method must dominate pointwise at any depth (walk-counting ≥
/// shortest-path counting).
#[test]
fn signature_methods_relationship_holds_on_real_scale() {
    let g = PaperDataset::Human.generate_scaled(0.1, 4);
    let e1 = smartpsi::signature::exploration_signatures(&g, 1);
    let m1 = matrix_signatures(&g, 1);
    for v in g.node_ids() {
        for l in 0..g.label_count() {
            assert!((e1.row(v)[l] - m1.row(v)[l]).abs() < 1e-4, "depth-1 equality");
        }
    }
    let e2 = smartpsi::signature::exploration_signatures(&g, 2);
    let m2 = matrix_signatures(&g, 2);
    for v in g.node_ids() {
        for l in 0..g.label_count() {
            assert!(m2.row(v)[l] >= e2.row(v)[l] - 1e-3, "matrix dominates");
        }
    }
}

/// The preemption/recovery machinery never changes answers, only cost:
/// run the same workload with recovery on and off.
#[test]
fn recovery_toggle_preserves_answers() {
    let g = PaperDataset::Twitter.generate_scaled(0.03, 6);
    let on = SmartPsi::new(
        g.clone(),
        SmartPsiConfig {
            min_candidates_for_ml: 10,
            enable_recovery: true,
            ..SmartPsiConfig::default()
        },
    );
    let off = SmartPsi::new(
        g.clone(),
        SmartPsiConfig {
            min_candidates_for_ml: 10,
            enable_recovery: false,
            ..SmartPsiConfig::default()
        },
    );
    for size in [4usize, 6] {
        let Some(w) = QueryWorkload::extract(&g, size, 3, size as u64) else {
            continue;
        };
        for q in &w.queries {
            assert_eq!(
                on.run(q, &RunSpec::new()).valid,
                off.run(q, &RunSpec::new()).valid
            );
        }
    }
}
