//! Offline vendored stand-in for the `proptest` 1.x API subset this
//! workspace uses: the [`proptest!`] macro with `#![proptest_config]`
//! and `pat in strategy` bindings, [`strategy::Strategy`] with
//! `prop_map`, range and tuple strategies, `any::<T>()`,
//! [`prop_assert!`] / [`prop_assert_eq!`], and
//! `ProptestConfig::with_cases`.
//!
//! Semantics versus upstream: cases are generated from a seed derived
//! deterministically from the test's file, line, name and case index
//! (fully reproducible across runs and machines), and there is **no
//! shrinking** — a failing case reports its inputs' case index and the
//! assertion message instead of a minimized counterexample.

pub mod test_runner {
    //! Config, error and RNG plumbing used by the generated tests.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The RNG handed to strategies.
    pub type TestRng = StdRng;

    /// Subset of upstream `ProptestConfig`: only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure with `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
            }
        }

        /// Upstream-compatible alias used by `prop_assume`-style code.
        pub fn reject(message: impl Into<String>) -> Self {
            Self::fail(message)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic per-case RNG: FNV-1a over the test identity mixed
    /// with the case index.
    pub fn case_rng(file: &str, line: u32, name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in file
            .bytes()
            .chain(name.bytes())
            .chain(line.to_le_bytes())
            .chain(case.to_le_bytes())
        {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::seed_from_u64(h)
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Keep only values satisfying `f` (retries generation; upstream
        /// rejects the case instead — equivalent for our usage).
        fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { source: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.source.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 10000 consecutive candidates");
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A/0);
    impl_tuple_strategy!(A/0, B/1);
    impl_tuple_strategy!(A/0, B/1, C/2);
    impl_tuple_strategy!(A/0, B/1, C/2, D/3);
    impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4);
    impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5);

    /// Upstream proptest treats a `&str` as a regex generating matching
    /// strings. This stand-in supports the subset the workspace uses —
    /// a sequence of atoms (`.`, literal chars, `\`-escapes) each with
    /// an optional `{m,n}` / `{n}` / `*` / `+` / `?` quantifier — and
    /// panics loudly on anything fancier (alternation, classes, groups)
    /// rather than silently generating the wrong distribution.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            let mut chars = self.chars().peekable();
            while let Some(c) = chars.next() {
                let atom: Option<char> = match c {
                    '.' => None, // any char
                    '\\' => Some(match chars.next().expect("dangling escape") {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => other,
                    }),
                    '[' | '(' | '|' => {
                        panic!("offline proptest stub: unsupported regex construct {c:?} in {self:?}")
                    }
                    lit => Some(lit),
                };
                let (lo, hi) = match chars.peek() {
                    Some('{') => {
                        chars.next();
                        let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
                        match spec.split_once(',') {
                            Some((m, n)) => (
                                m.parse().expect("regex {m,n} lower bound"),
                                n.parse().expect("regex {m,n} upper bound"),
                            ),
                            None => {
                                let n: usize = spec.parse().expect("regex {n} count");
                                (n, n)
                            }
                        }
                    }
                    Some('*') => {
                        chars.next();
                        (0, 8)
                    }
                    Some('+') => {
                        chars.next();
                        (1, 8)
                    }
                    Some('?') => {
                        chars.next();
                        (0, 1)
                    }
                    _ => (1, 1),
                };
                for _ in 0..rng.gen_range(lo..=hi) {
                    out.push(atom.unwrap_or_else(|| random_char(rng)));
                }
            }
            out
        }
    }

    /// `.`-atom distribution: mostly printable ASCII, with enough
    /// whitespace, control and multi-byte characters mixed in to
    /// exercise parser edge cases.
    fn random_char(rng: &mut TestRng) -> char {
        match rng.gen_range(0u32..10) {
            0 => ['\n', '\t', '\r', ' '][rng.gen_range(0..4usize)],
            1 => char::from_u32(rng.gen_range(0x80u32..0x2000))
                .unwrap_or('\u{fffd}'),
            _ => char::from(rng.gen_range(0x20u8..0x7f)),
        }
    }
}

pub mod collection {
    //! Strategies for collections (`vec` only — the subset used here).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Length bounds for a generated collection (inclusive).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(!r.is_empty(), "empty size range");
            Self { min: r.start, max: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self { min: *r.start(), max: *r.end() }
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `element`-generated values with a length drawn
    /// uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.min..=self.size.max);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — full-range generation for primitive types.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod prelude {
    //! The names `use proptest::prelude::*` is expected to bring in.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert a condition inside a property, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
}

/// Define property tests: each `pat in strategy` binding is generated
/// per case, and the body runs for `config.cases` cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal: expand each test fn inside [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __rng =
                    $crate::test_runner::case_rng(file!(), line!(), stringify!($name), case);
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = __outcome {
                    panic!(
                        "proptest {} failed at case {}/{}:\n{}",
                        stringify!($name),
                        case,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Ranges stay in bounds, tuples and prop_map compose.
        #[test]
        fn generated_values_in_bounds(x in 1usize..=9, (a, b) in (0u32..5, any::<bool>())) {
            prop_assert!((1..=9).contains(&x));
            prop_assert!(a < 5);
            let _ = b;
        }

        /// prop_map transforms values.
        #[test]
        fn mapping_applies(v in (0u8..4).prop_map(|x| x as usize * 10)) {
            prop_assert!(v % 10 == 0 && v < 40, "v = {v}");
            prop_assert_eq!(v % 10, 0);
        }
    }

    #[test]
    fn failures_report_case() {
        let r = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                #[test]
                fn always_fails(x in 0u8..10) {
                    prop_assert!(x > 250, "x was {x}");
                }
            }
            always_fails();
        });
        assert!(r.is_err());
    }

    #[test]
    fn determinism_across_runs() {
        use crate::strategy::Strategy;
        let s = (0u64..1000, 0u64..1000);
        let mut r1 = crate::test_runner::case_rng("f", 1, "t", 3);
        let mut r2 = crate::test_runner::case_rng("f", 1, "t", 3);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::case_rng("f", 2, "t", 0);
        for _ in 0..50 {
            let s = ".{0,256}".generate(&mut rng);
            assert!(s.chars().count() <= 256);
        }
        let s = "ab{3}c?".generate(&mut rng);
        assert!(s == "abbb" || s == "abbbc", "got {s:?}");
        let s = "x+".generate(&mut rng);
        assert!((1..=8).contains(&s.len()) && s.chars().all(|c| c == 'x'));
    }

    #[test]
    fn collection_vec_respects_bounds() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::case_rng("f", 3, "t", 0);
        for _ in 0..50 {
            let v = crate::collection::vec(crate::arbitrary::any::<u8>(), 0..30)
                .generate(&mut rng);
            assert!(v.len() < 30);
            let pairs =
                crate::collection::vec((0u8..4, crate::arbitrary::any::<bool>()), 2..=5)
                    .generate(&mut rng);
            assert!((2..=5).contains(&pairs.len()));
        }
    }
}
