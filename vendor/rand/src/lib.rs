//! Offline vendored stand-in for the `rand` 0.8 API subset this
//! workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] extension trait with `gen`, `gen_range` and
//! `gen_bool`.
//!
//! The build environment has no network access to crates.io, so the
//! real `rand` cannot be fetched; this crate keeps the same call sites
//! compiling with a deterministic, statistically solid generator
//! (xoshiro256++ seeded through SplitMix64). Streams differ from the
//! upstream `StdRng` (ChaCha12), which is fine: the workspace only
//! relies on seeds for *reproducibility*, never on exact upstream
//! values.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface (mirrors `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (mirrors `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64 exactly
    /// like `rand_core` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (same expansion rand_core uses).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be drawn from the "standard" distribution
/// (`Rng::gen`). Integers are uniform over their full range, floats
/// uniform in `[0, 1)`, bools fair coin flips.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits → [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with uniform range sampling (mirrors `rand::distributions::
/// uniform::SampleUniform` just enough for `gen_range`).
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)` (`high` exclusive).
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]` (`high` inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let v = (u128::sample_standard(rng) % span) as i128;
                (low as i128 + v) as $t
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let v = (u128::sample_standard(rng) % span) as i128;
                (low as i128 + v) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                low + (high - low) * <$t>::sample_standard(rng)
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                low + (high - low) * <$t>::sample_standard(rng)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Range argument of [`Rng::gen_range`] (mirrors
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draw from the standard distribution of `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform draw from `range`.
    #[inline]
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        f64::sample_standard(self) < p
    }

    /// Fill a byte slice with random data.
    #[inline]
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (xoshiro256++). Stands in for
    /// `rand::rngs::StdRng`; the stream differs from upstream, which
    /// this workspace never relies on.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain).
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // A degenerate all-zero state would be a fixed point.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

/// Minimal `prelude` mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let g: f32 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&g));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(99);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.3).abs() < 0.01, "observed {p}");
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }
}
