//! Offline vendored stand-in for the `parking_lot` 0.12 API subset
//! this workspace uses: [`Mutex`] and [`RwLock`] with non-poisoning
//! `lock` / `read` / `write` that return guards directly.
//!
//! Implemented over `std::sync` primitives; poisoning is erased by
//! recovering the inner guard from a poisoned lock (parking_lot
//! semantics: a panicking holder does not poison the lock).

use std::sync::{self, TryLockError};

/// Non-poisoning mutex.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
