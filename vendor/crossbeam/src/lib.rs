//! Offline vendored stand-in for the `crossbeam` 0.8 API subset this
//! workspace uses: `crossbeam::thread::scope` with `Scope::spawn` and
//! `ScopedJoinHandle::join`.
//!
//! Implemented directly over `std::thread::scope` (stable since Rust
//! 1.63), which provides the same structured-concurrency guarantee:
//! every spawned thread is joined before `scope` returns, so borrows
//! of the enclosing stack frame are sound.

pub mod thread {
    //! Scoped threads.

    use std::any::Any;

    /// Result of a scope: `Err` carries a child panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle for spawning threads that may borrow the
    /// enclosing frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives a unit token in
        /// the position where crossbeam passes a nested `&Scope`
        /// (every call site in this workspace ignores it as `|_|`).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(())),
            }
        }
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish; `Err` is its panic payload.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Create a scope. Unlike upstream crossbeam this cannot observe
    /// unjoined panicked children (std re-raises those panics), so the
    /// outer `Result` is always `Ok` — matching how every call site in
    /// this workspace immediately `.expect()`s it.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_borrows() {
        let data = vec![1, 2, 3, 4];
        let total = crate::thread::scope(|scope| {
            let h1 = scope.spawn(|_| data[..2].iter().sum::<i32>());
            let h2 = scope.spawn(|_| data[2..].iter().sum::<i32>());
            h1.join().expect("h1") + h2.join().expect("h2")
        })
        .expect("scope");
        assert_eq!(total, 10);
    }

    #[test]
    fn child_panic_surfaces_in_join() {
        let r = crate::thread::scope(|scope| {
            let h = scope.spawn(|_| -> () { panic!("boom") });
            h.join()
        })
        .expect("scope itself succeeds");
        assert!(r.is_err());
    }
}
