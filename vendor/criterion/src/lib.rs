//! Offline vendored stand-in for the `criterion` 0.5 API subset this
//! workspace uses: `Criterion::benchmark_group`, group tuning knobs,
//! `bench_function` with `Bencher::iter` / `iter_batched`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! It actually measures: each benchmark warms up briefly, then runs
//! `sample_size` samples within the configured measurement window and
//! prints mean wall-clock per iteration. No statistics files, HTML
//! reports, or CLI parsing — just honest numbers on stdout so
//! `cargo bench` still tracks gross regressions offline.

use std::marker::PhantomData;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup (accepted, not acted upon).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-setup on every iteration.
    PerIteration,
}

pub mod measurement {
    //! Measurement backends (only wall-clock here).

    /// Wall-clock time measurement.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// Benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Upstream parses CLI filters here; offline stand-in: no-op.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_, measurement::WallTime> {
        eprintln!("[criterion-offline] group {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_secs(1),
            _criterion: PhantomData,
        }
    }
}

/// A group of benchmarks sharing tuning parameters.
pub struct BenchmarkGroup<'a, M> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    _criterion: PhantomData<&'a mut M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Total measurement window; sampling stops when it is spent.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            mean: Duration::ZERO,
            samples: 0,
        };
        f(&mut b);
        eprintln!(
            "[criterion-offline] {}/{id}: mean {:?} over {} samples",
            self.name, b.mean, b.samples
        );
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    mean: Duration,
    samples: u64,
}

impl Bencher {
    /// Measure `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up window is spent (at least once).
        let t0 = Instant::now();
        loop {
            std::hint::black_box(routine());
            if t0.elapsed() >= self.warm_up {
                break;
            }
        }
        let mut total = Duration::ZERO;
        let mut n = 0u64;
        let window = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            std::hint::black_box(routine());
            total += t.elapsed();
            n += 1;
            if window.elapsed() >= self.measurement {
                break;
            }
        }
        self.mean = total / n.max(1) as u32;
        self.samples = n;
    }

    /// Measure `routine` on fresh inputs from `setup` (setup excluded
    /// from timing).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let t0 = Instant::now();
        loop {
            let input = setup();
            std::hint::black_box(routine(input));
            if t0.elapsed() >= self.warm_up {
                break;
            }
        }
        let mut total = Duration::ZERO;
        let mut n = 0u64;
        let window = Instant::now();
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            total += t.elapsed();
            n += 1;
            if window.elapsed() >= self.measurement {
                break;
            }
        }
        self.mean = total / n.max(1) as u32;
        self.samples = n;
    }
}

/// Prevent the optimizer from eliding a value (upstream re-export).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Group benchmark functions under one callable.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("unit");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(10));
        let mut ran = 0u32;
        g.bench_function("noop", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
